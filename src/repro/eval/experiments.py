"""Per-figure/table experiment drivers, declared as job matrices.

Each experiment of the paper's evaluation exists in two equivalent
forms:

* a classic **driver function** (``fig12_overall_ipc(runner, ...)``)
  that executes serially against a shared
  :class:`repro.sim.runner.Runner` and returns an
  :class:`~repro.eval.campaign.ExperimentResult` — what the benches
  and the ``repro figure`` CLI use;
* a declarative :class:`~repro.eval.campaign.ExperimentSpec` in the
  :data:`EXPERIMENTS` registry — a ``jobs()`` builder that expands the
  experiment into a flat (workload, scheme, config-override) cell
  matrix plus a *pure* ``aggregate()`` — what the parallel, resumable
  ``repro campaign`` engine executes.

Both forms share the same cell evaluation and the same aggregation
code, so they produce identical numbers; the drivers are literally
``aggregate(run_cells_serial(runner, jobs(...)))``.

Units throughout: normalised IPC is relative to the calibrated
unprotected baseline (1.0 = no slowdown; Fig. 12's metric), bandwidth
overhead is metadata-bytes / data-bytes (Fig. 14), energy is
normalised energy-per-instruction (Fig. 15), and the detector
breakdowns are fractions of predictions in [0, 1] (Figs. 10/11).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.config import DetectorConfig, SimConfig
from repro.common.types import Scheme
from repro.core.schemes import FIG12_SCHEMES, FIG13_SCHEMES, FIG14_SCHEMES
from repro.eval.campaign import (
    CellRecord,
    ExperimentResult,
    ExperimentSpec,
    JobSpec,
    run_cells_serial,
)
from repro.eval.energy import EnergyModel
from repro.sim.runner import Runner
from repro.workloads.suite import BENCHMARK_NAMES

#: Default workload list for every experiment (the 16 Table VII
#: benchmarks from Rodinia / Parboil / Polybench).
DEFAULT_WORKLOADS = list(BENCHMARK_NAMES)


def _workloads(names: Optional[List[str]]) -> List[str]:
    return names if names is not None else DEFAULT_WORKLOADS


def _run_spec(spec: ExperimentSpec, runner: Runner,
              workloads: Optional[List[str]],
              jobs: Optional[List[JobSpec]] = None) -> ExperimentResult:
    """The old serial path: evaluate the spec's matrix on ``runner``."""
    if jobs is None:
        jobs = spec.jobs(workloads, runner.config, runner.scale)
    return spec.aggregate(run_cells_serial(runner, jobs))


# ---------------------------------------------------------------------------
# Shared matrix builders and aggregators
# ---------------------------------------------------------------------------

def _scheme_matrix(experiment: str, schemes: List[Scheme],
                   workloads: Optional[List[str]], config: SimConfig,
                   scale: float) -> List[JobSpec]:
    """The common (scheme x workload) matrix behind Figs. 12-16."""
    return [
        JobSpec(experiment=experiment, workload=name, scheme=scheme.value,
                series=scheme.value, scale=scale, config=config)
        for scheme in schemes
        for name in _workloads(workloads)
    ]


def _series_aggregate(
    experiment: str, value: Callable[[CellRecord], float]
) -> Callable[[List[CellRecord]], ExperimentResult]:
    """Fold cells into ``series[job.series][job.workload] = value(cell)``."""
    def aggregate(records: List[CellRecord]) -> ExperimentResult:
        result = ExperimentResult(experiment)
        for rec in records:
            result.series.setdefault(rec.job.series, {})[rec.job.workload] = \
                value(rec)
        return result

    return aggregate


def _normalized_ipc(rec: CellRecord) -> float:
    return rec.result.normalized_ipc(rec.baseline)


def _breakdown_aggregate(
    experiment: str, categories: List[str], stats: str
) -> Callable[[List[CellRecord]], ExperimentResult]:
    """Figs. 10/11: per-workload prediction-outcome fractions."""
    def aggregate(records: List[CellRecord]) -> ExperimentResult:
        result = ExperimentResult(experiment)
        for cat in categories:
            result.series[cat] = {}
        for rec in records:
            fractions = getattr(rec.result, stats).as_fractions()
            for cat in categories:
                result.series[cat][rec.job.workload] = fractions[cat]
        return result

    return aggregate


# ---------------------------------------------------------------------------
# Fig. 5 — streaming / read-only access ratios (Section III-A)
# ---------------------------------------------------------------------------

def _fig5_jobs(workloads: Optional[List[str]], config: SimConfig,
               scale: float) -> List[JobSpec]:
    return [
        JobSpec(experiment="fig5", workload=name, kind="profile",
                scheme=Scheme.UNPROTECTED.value, scale=scale, config=config)
        for name in _workloads(workloads)
    ]


def _fig5_aggregate(records: List[CellRecord]) -> ExperimentResult:
    result = ExperimentResult("fig5")
    result.series["streaming"] = {}
    result.series["read_only"] = {}
    for rec in records:
        result.series["streaming"][rec.job.workload] = \
            rec.profile["streaming_ratio"]
        result.series["read_only"][rec.job.workload] = \
            rec.profile["readonly_ratio"]
    return result


def fig5_access_ratios(runner: Runner, workloads: Optional[List[str]] = None) -> ExperimentResult:
    """Fig. 5 (Section III-A): fraction of accesses that hit streaming
    chunks and read-only regions, from the recorded ground-truth
    profile.  Values are fractions of MEE-visible accesses in [0, 1].
    """
    return _run_spec(EXPERIMENTS["fig5"], runner, workloads)


# ---------------------------------------------------------------------------
# Figs. 10 / 11 — detector prediction breakdowns (Section VI-E)
# ---------------------------------------------------------------------------

FIG10_CATEGORIES = ["correct", "mp_init", "mp_aliasing"]
FIG11_CATEGORIES = [
    "correct", "mp_init", "mp_runtime_read_only",
    "mp_runtime_non_read_only", "mp_aliasing",
]


def _shm_run_jobs(experiment: str):
    def build(workloads: Optional[List[str]], config: SimConfig,
              scale: float) -> List[JobSpec]:
        return [
            JobSpec(experiment=experiment, workload=name,
                    scheme=Scheme.SHM.value, series=Scheme.SHM.value,
                    scale=scale, config=config)
            for name in _workloads(workloads)
        ]

    return build


def fig10_readonly_prediction(runner: Runner, workloads: Optional[List[str]] = None) -> ExperimentResult:
    """Fig. 10 (Section VI-E): read-only predictor outcome breakdown
    under SHM — correct predictions vs. initialisation and aliasing
    mispredictions, as fractions of all predictions in [0, 1]."""
    return _run_spec(EXPERIMENTS["fig10"], runner, workloads)


def fig11_streaming_prediction(runner: Runner, workloads: Optional[List[str]] = None) -> ExperimentResult:
    """Fig. 11 (Section VI-E): streaming predictor outcome breakdown
    under SHM, split by the Tables III/IV misprediction scenarios;
    fractions of all predictions in [0, 1]."""
    return _run_spec(EXPERIMENTS["fig11"], runner, workloads)


# ---------------------------------------------------------------------------
# Fig. 12 — overall normalised IPC (Section VI-B)
# ---------------------------------------------------------------------------

def fig12_overall_ipc(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    schemes: Optional[List[Scheme]] = None,
) -> ExperimentResult:
    """Fig. 12 (Section VI-B): IPC of every Table VIII scheme
    normalised to the unprotected baseline (1.0 = no slowdown).  The
    paper's headline staircase: Naive 53.9% overhead down to SHM
    8.09%."""
    jobs = _scheme_matrix("fig12", schemes or FIG12_SCHEMES, workloads,
                          runner.config, runner.scale)
    return _run_spec(EXPERIMENTS["fig12"], runner, workloads, jobs=jobs)


# ---------------------------------------------------------------------------
# Fig. 13 — optimisation breakdown (Section VI-C)
# ---------------------------------------------------------------------------

def fig13_optimization_breakdown(
    runner: Runner, workloads: Optional[List[str]] = None
) -> ExperimentResult:
    """Fig. 13 (Section VI-C): normalised IPC as SHM's optimisations
    are layered on top of PSSM (read-only only, then dual-granularity
    MACs, then the oracle upper bound).  1.0 = unprotected."""
    return _run_spec(EXPERIMENTS["fig13"], runner, workloads)


# ---------------------------------------------------------------------------
# Fig. 14 — bandwidth overheads (Section VI-D)
# ---------------------------------------------------------------------------

def fig14_bandwidth_overhead(
    runner: Runner, workloads: Optional[List[str]] = None
) -> ExperimentResult:
    """Fig. 14 (Section VI-D): metadata DRAM traffic (counters, MACs,
    BMT nodes, misprediction refetches) as a fraction of demand data
    bytes — metadata-bytes / data-bytes, unitless."""
    return _run_spec(EXPERIMENTS["fig14"], runner, workloads)


# ---------------------------------------------------------------------------
# Fig. 15 — energy per instruction (Section VI-F)
# ---------------------------------------------------------------------------

FIG15_SCHEMES = [Scheme.NAIVE, Scheme.COMMON_CTR, Scheme.PSSM, Scheme.SHM]


def _fig15_aggregate_with(model: Optional[EnergyModel]):
    def aggregate(records: List[CellRecord]) -> ExperimentResult:
        m = model or EnergyModel()
        result = ExperimentResult("fig15")
        for rec in records:
            result.series.setdefault(rec.job.series, {})[rec.job.workload] = \
                m.normalized_epi(rec.result, rec.baseline)
        return result

    return aggregate


def fig15_energy(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    model: Optional[EnergyModel] = None,
) -> ExperimentResult:
    """Fig. 15 (Section VI-F): energy per instruction normalised to
    the unprotected GPU (1.0 = baseline energy), from the event-count
    model in :mod:`repro.eval.energy`."""
    jobs = _scheme_matrix("fig15", FIG15_SCHEMES, workloads,
                          runner.config, runner.scale)
    return _fig15_aggregate_with(model)(run_cells_serial(runner, jobs))


# ---------------------------------------------------------------------------
# Fig. 16 — L2 as a victim cache (Section VI-G)
# ---------------------------------------------------------------------------

def fig16_victim_cache(
    runner: Runner, workloads: Optional[List[str]] = None
) -> ExperimentResult:
    """Fig. 16 (Section VI-G, mechanism in Section IV-D): normalised
    IPC of SHM with and without the L2-as-metadata-victim-cache mode.
    Meaningful L2 thrash needs scale >= 1.0."""
    return _run_spec(EXPERIMENTS["fig16"], runner, workloads)


# ---------------------------------------------------------------------------
# Table IX — hardware overhead (Section V-A)
# ---------------------------------------------------------------------------

def table9_hardware_overhead(
    detectors: Optional[DetectorConfig] = None, num_partitions: int = 12
) -> Dict[str, float]:
    """Table IX (Section V-A): on-chip storage of the two detectors —
    pure arithmetic over :class:`DetectorConfig`, no simulation.
    Values are bytes except ``tracker_bits_each`` (bits) and
    ``trackers`` (a count); the paper totals 5,460 B across 12
    partitions.  CLI: ``repro hardware``."""
    cfg = detectors or DetectorConfig()
    per_partition_bits = cfg.partition_storage_bits()
    return {
        "readonly_predictor_bytes": cfg.readonly_entries / 8,
        "streaming_predictor_bytes": cfg.stream_entries / 8,
        "tracker_bits_each": cfg.tracker_storage_bits(),
        "trackers": cfg.num_trackers,
        "per_partition_bytes": per_partition_bits / 8,
        "total_bytes": per_partition_bits / 8 * num_partitions,
    }


# ---------------------------------------------------------------------------
# Ablation — dual-granularity MAC conflict policy (Tables III/IV)
# ---------------------------------------------------------------------------

MAC_CONFLICT_POLICIES = ("recheck", "update_both")


def _mac_conflict_jobs(workloads: Optional[List[str]], config: SimConfig,
                       scale: float) -> List[JobSpec]:
    return [
        JobSpec(experiment="ablation_mac_conflict", workload=name,
                scheme=Scheme.SHM.value, series=policy, scale=scale,
                config=config, overrides={"mac_conflict_policy": policy})
        for policy in MAC_CONFLICT_POLICIES
        for name in _workloads(workloads)
    ]


def ablation_mac_conflict_policy(
    runner: Runner, workloads: Optional[List[str]] = None
) -> ExperimentResult:
    """Ablation (Tables III/IV remedies): SHM's normalised IPC under
    the two dual-granularity MAC aliasing remedies — ``recheck`` (the
    paper's choice: verify the other MAC on failure) vs
    ``update_both`` (always maintain both granularities)."""
    return _run_spec(EXPERIMENTS["ablation_mac_conflict"], runner, workloads)


# ---------------------------------------------------------------------------
# Ablation — detector sizing (Section V-A, Table IX knob)
# ---------------------------------------------------------------------------

DEFAULT_TRACKER_COUNTS = [2, 8, 32]


def _detector_sizing_jobs(workloads: Optional[List[str]], config: SimConfig,
                          scale: float,
                          tracker_counts: Optional[List[int]] = None,
                          ) -> List[JobSpec]:
    return [
        JobSpec(experiment="ablation_detector_sizing", workload=name,
                scheme=Scheme.SHM.value, series=f"mats_{n}", scale=scale,
                config=config,
                overrides={"detectors": DetectorConfig(num_trackers=n)})
        for n in (tracker_counts or DEFAULT_TRACKER_COUNTS)
        for name in _workloads(workloads)
    ]


def ablation_detector_sizing(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    tracker_counts: Optional[List[int]] = None,
) -> ExperimentResult:
    """Ablation (Section V-A): SHM's normalised IPC as the number of
    memory access trackers (MATs) per partition varies around the
    paper's 8 (Table IX).  Series are labelled ``mats_<n>``."""
    spec = EXPERIMENTS["ablation_detector_sizing"]
    jobs = _detector_sizing_jobs(workloads, runner.config, runner.scale,
                                 tracker_counts)
    return _run_spec(spec, runner, workloads, jobs=jobs)


# ---------------------------------------------------------------------------
# Ablation — bandwidth-utilisation sensitivity (Table VII intensity)
# ---------------------------------------------------------------------------

DEFAULT_UTILIZATIONS = [0.2, 0.5, 0.8, 0.95]
DEFAULT_BANDWIDTH_SCHEMES = [Scheme.NAIVE, Scheme.SHM]


def _bandwidth_jobs(workloads: Optional[List[str]], config: SimConfig,
                    scale: float,
                    utilizations: Optional[List[float]] = None,
                    schemes: Optional[List[Scheme]] = None) -> List[JobSpec]:
    base = workloads[0] if workloads else "kmeans"
    return [
        JobSpec(experiment="ablation_bandwidth_sensitivity",
                workload=f"{base}@{int(100 * util)}", workload_base=base,
                workload_overrides={"bandwidth_utilization": util},
                scheme=scheme.value, series=scheme.value, scale=scale,
                config=config)
        for util in (utilizations or DEFAULT_UTILIZATIONS)
        for scheme in (schemes or DEFAULT_BANDWIDTH_SCHEMES)
    ]


def ablation_bandwidth_sensitivity(
    runner: Runner,
    workload: str = "kmeans",
    utilizations: Optional[List[float]] = None,
    schemes: Optional[List[Scheme]] = None,
) -> ExperimentResult:
    """Sweep one workload's calibrated bandwidth utilisation.

    The paper observes that secure-memory overheads concentrate on
    bandwidth-hungry workloads (atax at 23% barely notices naive
    metadata; fdtd2d at 92% is crushed — Table VII / Section VI-B).
    This ablation isolates that effect: same address stream, different
    intensity.  Workload variants are named ``<base>@<util%>``; values
    are normalised IPC."""
    jobs = _bandwidth_jobs([workload], runner.config, runner.scale,
                           utilizations, schemes)
    return _run_spec(EXPERIMENTS["ablation_bandwidth_sensitivity"], runner,
                     None, jobs=jobs)


# ---------------------------------------------------------------------------
# Ablation — metadata cache (MDC) capacity (Table VI knob)
# ---------------------------------------------------------------------------

DEFAULT_MDC_SIZES = [1024, 2048, 8192]


def _mdc_jobs(workloads: Optional[List[str]], config: SimConfig,
              scale: float, sizes: Optional[List[int]] = None,
              scheme: Scheme = Scheme.PSSM) -> List[JobSpec]:
    from dataclasses import replace

    from repro.common.config import CacheConfig, MDCConfig

    jobs = []
    for size in sizes or DEFAULT_MDC_SIZES:
        mdc = MDCConfig(
            counter=CacheConfig(size_bytes=size),
            mac=CacheConfig(size_bytes=size),
            bmt=CacheConfig(size_bytes=size),
        )
        jobs.extend(
            JobSpec(experiment="ablation_mdc_size", workload=name,
                    scheme=scheme.value, series=f"mdc_{size // 1024}kb",
                    scale=scale, config=replace(config, mdc=mdc))
            for name in _workloads(workloads)
        )
    return jobs


def ablation_mdc_size(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    sizes: Optional[List[int]] = None,
    scheme: Scheme = Scheme.PSSM,
) -> ExperimentResult:
    """Ablation (Table VI knob): normalised IPC as the per-partition
    metadata-cache capacity sweeps around the paper's 2 KB each.
    Every size is its own :class:`SimConfig`, so these cells run on
    sibling runners sharing the parent's calibrations (the unprotected
    calibration never touches the MDC).  Series are ``mdc_<n>kb``."""
    jobs = _mdc_jobs(workloads, runner.config, runner.scale, sizes, scheme)
    return _run_spec(EXPERIMENTS["ablation_mdc_size"], runner, workloads,
                     jobs=jobs)


# ---------------------------------------------------------------------------
# Ablation — DRAM service discipline (repro.memory.sched)
# ---------------------------------------------------------------------------

DEFAULT_DRAM_SCHEDULERS = ["fifo", "critical_first", "banked"]


def _dram_scheduler_jobs(workloads: Optional[List[str]], config: SimConfig,
                         scale: float,
                         schedulers: Optional[List[str]] = None,
                         scheme: Scheme = Scheme.SHM) -> List[JobSpec]:
    from dataclasses import replace

    jobs = []
    for name_s in schedulers or DEFAULT_DRAM_SCHEDULERS:
        gpu = replace(config.gpu, dram_scheduler=name_s)
        jobs.extend(
            JobSpec(experiment="ablation_dram_scheduler", workload=name,
                    scheme=scheme.value, series=name_s, scale=scale,
                    config=replace(config, gpu=gpu))
            for name in _workloads(workloads)
        )
    return jobs


def ablation_dram_scheduler(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    schedulers: Optional[List[str]] = None,
    scheme: Scheme = Scheme.SHM,
) -> ExperimentResult:
    """Ablation (scheduler layer): normalised IPC of one scheme under
    each registered DRAM service discipline — the arrival-order FIFO
    the paper models, the critical-first discipline that defers MAC/BMT
    writes out of the demand path, and the banked open-row model.
    Series are scheduler names; each discipline is its own
    :class:`SimConfig` cell, so sweeps run as ordinary campaign cells.
    Note each discipline's cells *re-calibrate* (a scheduler changes
    the contention model the MLP window is tuned against)."""
    jobs = _dram_scheduler_jobs(workloads, runner.config, runner.scale,
                                schedulers, scheme)
    return _run_spec(EXPERIMENTS["ablation_dram_scheduler"], runner,
                     workloads, jobs=jobs)


# ---------------------------------------------------------------------------
# Ablation — streaming chunk size (Section IV-C, K = 32)
# ---------------------------------------------------------------------------

DEFAULT_CHUNK_SIZES = [2048, 4096, 8192]


def _chunk_jobs(workloads: Optional[List[str]], config: SimConfig,
                scale: float,
                sizes: Optional[List[int]] = None) -> List[JobSpec]:
    return [
        JobSpec(experiment="ablation_chunk_size", workload=name,
                scheme=Scheme.SHM.value, series=f"chunk_{size // 1024}kb",
                scale=scale, config=config,
                overrides={"detectors": DetectorConfig(
                    stream_chunk_size=size,
                    monitor_accesses=size // 128,
                )})
        for size in (sizes or DEFAULT_CHUNK_SIZES)
        for name in _workloads(workloads)
    ]


def ablation_chunk_size(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    sizes: Optional[List[int]] = None,
) -> ExperimentResult:
    """Ablation (Section IV-C): SHM's normalised IPC as the
    dual-granularity chunk size sweeps around the paper's 4 KB with
    K = 32; the MAT window scales with the chunk's block count.
    Series are ``chunk_<n>kb``."""
    jobs = _chunk_jobs(workloads, runner.config, runner.scale, sizes)
    return _run_spec(EXPERIMENTS["ablation_chunk_size"], runner, workloads,
                     jobs=jobs)


# ---------------------------------------------------------------------------
# Multi-tenant traffic experiments (repro.workloads.multitenant)
# ---------------------------------------------------------------------------

DEFAULT_TENANT_COUNTS = [1, 2, 4, 8]
DEFAULT_CHURN_LEVELS = [0.0, 0.25, 0.5, 1.0]
MULTITENANT_SCHEMES = [Scheme.PSSM, Scheme.SHM]


def _multitenant_jobs(workloads: Optional[List[str]], config: SimConfig,
                      scale: float,
                      tenant_counts: Optional[List[int]] = None,
                      ) -> List[JobSpec]:
    from repro.workloads.multitenant import contention_spec

    specs = [contention_spec(n) for n in
             (tenant_counts or DEFAULT_TENANT_COUNTS)]
    return [
        JobSpec(experiment="ablation_multitenant_contention",
                workload=spec["name"], scheme=scheme.value,
                series=scheme.value, scale=scale, config=config,
                workload_spec=spec)
        for scheme in MULTITENANT_SCHEMES
        for spec in specs
    ]


def ablation_multitenant_contention(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    tenant_counts: Optional[List[int]] = None,
) -> ExperimentResult:
    """Multi-tenant contention sweep: normalised IPC of PSSM vs SHM as
    the number of concurrent tenant streams grows (1, 2, 4, 8 by
    default).  Each cell is a composed multi-tenant suite
    (:func:`repro.workloads.multitenant.contention_spec`) — N isolated
    address slabs whose Poisson-interleaved bursts shred spatial
    locality and thrash the per-partition metadata caches, the
    scenario where the paper's per-region scheme selection (streaming
    + read-only detection) must hold its advantage.  ``workloads`` is
    ignored: the workload axis *is* the tenant count (``mt1`` ..
    ``mt8``); series are scheme names."""
    jobs = _multitenant_jobs(workloads, runner.config, runner.scale,
                             tenant_counts)
    return _run_spec(EXPERIMENTS["ablation_multitenant_contention"],
                     runner, workloads, jobs=jobs)


def _phase_churn_jobs(workloads: Optional[List[str]], config: SimConfig,
                      scale: float,
                      churn_levels: Optional[List[float]] = None,
                      ) -> List[JobSpec]:
    from repro.workloads.multitenant import phase_churn_spec

    specs = [phase_churn_spec(churn) for churn in
             (churn_levels or DEFAULT_CHURN_LEVELS)]
    return [
        JobSpec(experiment="suite_phase_churn",
                workload=spec["name"], scheme=scheme.value,
                series=scheme.value, scale=scale, config=config,
                workload_spec=spec)
        for scheme in MULTITENANT_SCHEMES
        for spec in specs
    ]


def suite_phase_churn(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    churn_levels: Optional[List[float]] = None,
) -> ExperimentResult:
    """Phase-churn sweep: normalised IPC of PSSM vs SHM as tenants
    re-roll their access patterns at epoch boundaries with increasing
    probability (0 %, 25 %, 50 %, 100 % by default).  Churn invalidates
    the detectors' learned region classifications mid-run — a region
    that was streaming becomes random-access — so this measures how
    quickly the adaptive schemes re-converge versus paying mispredicted
    metadata traffic.  ``workloads`` is ignored: the workload axis is
    the churn level (``mt4_churn0`` .. ``mt4_churn100``); series are
    scheme names."""
    jobs = _phase_churn_jobs(workloads, runner.config, runner.scale,
                             churn_levels)
    return _run_spec(EXPERIMENTS["suite_phase_churn"], runner, workloads,
                     jobs=jobs)


# ---------------------------------------------------------------------------
# Ablation — learned adaptive policies (repro.core.policies.learned)
# ---------------------------------------------------------------------------

#: Learned designs and the paper heuristics they are judged against.
LEARNED_SCHEMES = ["pssm", "shm", "pssm_learned", "shm_bandit"]

#: Tenant count of the contention cell the learned ablation includes.
LEARNED_CONTENTION_TENANTS = 4


def _learned_jobs(workloads: Optional[List[str]], config: SimConfig,
                  scale: float,
                  churn_levels: Optional[List[float]] = None,
                  ) -> List[JobSpec]:
    from repro.workloads.multitenant import contention_spec, phase_churn_spec

    specs = [phase_churn_spec(churn) for churn in
             (churn_levels or DEFAULT_CHURN_LEVELS)]
    specs.append(contention_spec(LEARNED_CONTENTION_TENANTS))
    jobs = []
    for scheme in LEARNED_SCHEMES:
        jobs.extend(
            JobSpec(experiment="ablation_learned_policies", workload=name,
                    scheme=scheme, series=scheme, scale=scale,
                    config=config, collect_decisions=True)
            for name in _workloads(workloads)
        )
        jobs.extend(
            JobSpec(experiment="ablation_learned_policies",
                    workload=spec["name"], scheme=scheme, series=scheme,
                    scale=scale, config=config, workload_spec=spec,
                    collect_decisions=True)
            for spec in specs
        )
    return jobs


def _learned_aggregate(records: List[CellRecord]) -> ExperimentResult:
    """Normalised IPC per scheme, plus a ``<scheme>:cost`` series with
    the total charged decision stall (the sum over detector families
    of the ledger summary's ``stall_cycles``) — the quantity the
    learned policies optimise.  Cells that came back without a
    decisions payload (e.g. store-cached cells another experiment ran
    without ``collect_decisions``) contribute IPC only."""
    result = ExperimentResult("ablation_learned_policies")
    for rec in records:
        result.series.setdefault(rec.job.series, {})[rec.job.workload] = \
            _normalized_ipc(rec)
        if rec.decisions:
            stall = sum(block["stall_cycles"]
                        for block in rec.decisions["by_detector"].values())
            result.series.setdefault(f"{rec.job.series}:cost", {})[
                rec.job.workload] = round(stall, 6)
    return result


def ablation_learned_policies(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    churn_levels: Optional[List[float]] = None,
) -> ExperimentResult:
    """Learned vs. paper-heuristic adaptive policies
    (:mod:`repro.core.policies.learned`): normalised IPC and total
    charged decision cost of ``pssm_learned`` (online-logit detectors)
    and ``shm_bandit`` (per-region arm selection) against PSSM and SHM
    — over the standard suite (where the learned designs must stay
    within noise of the heuristics), the phase-churn sweep and a
    4-tenant contention cell (where they must win back misprediction
    cost).  Every cell runs with a decision ledger attached; series
    ``<scheme>`` holds normalised IPC and ``<scheme>:cost`` the total
    charged stall cycles."""
    jobs = _learned_jobs(workloads, runner.config, runner.scale,
                         churn_levels)
    return _run_spec(EXPERIMENTS["ablation_learned_policies"], runner,
                     workloads, jobs=jobs)


# ---------------------------------------------------------------------------
# The registry the campaign engine executes
# ---------------------------------------------------------------------------

#: Every sweep-backed experiment, declaratively: ``repro campaign
#: <name>`` executes ``jobs()`` on the worker pool and folds completed
#: cells through ``aggregate()``.  Table IX is the one entry point not
#: listed here — it is pure arithmetic (``repro hardware``).
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.name: spec for spec in [
        ExperimentSpec(
            name="fig5",
            title="Fig. 5: streaming / read-only access ratios",
            provenance="Fig. 5, Section III-A",
            jobs=_fig5_jobs,
            aggregate=_fig5_aggregate,
            cost_hint=0.5,
        ),
        ExperimentSpec(
            name="fig10",
            title="Fig. 10: read-only prediction breakdown",
            provenance="Fig. 10, Section VI-E",
            jobs=_shm_run_jobs("fig10"),
            aggregate=_breakdown_aggregate("fig10", FIG10_CATEGORIES,
                                           "readonly_stats"),
        ),
        ExperimentSpec(
            name="fig11",
            title="Fig. 11: streaming prediction breakdown",
            provenance="Fig. 11, Section VI-E",
            jobs=_shm_run_jobs("fig11"),
            aggregate=_breakdown_aggregate("fig11", FIG11_CATEGORIES,
                                           "streaming_stats"),
        ),
        ExperimentSpec(
            name="fig12",
            title="Fig. 12: performance overheads (all Table VIII schemes)",
            provenance="Fig. 12, Section VI-B",
            jobs=lambda w, c, s: _scheme_matrix("fig12", FIG12_SCHEMES,
                                                w, c, s),
            aggregate=_series_aggregate("fig12", _normalized_ipc),
        ),
        ExperimentSpec(
            name="fig13",
            title="Fig. 13: optimisation breakdown",
            provenance="Fig. 13, Section VI-C",
            jobs=lambda w, c, s: _scheme_matrix("fig13", FIG13_SCHEMES,
                                                w, c, s),
            aggregate=_series_aggregate("fig13", _normalized_ipc),
        ),
        ExperimentSpec(
            name="fig14",
            title="Fig. 14: metadata bandwidth overhead",
            provenance="Fig. 14, Section VI-D",
            jobs=lambda w, c, s: _scheme_matrix("fig14", FIG14_SCHEMES,
                                                w, c, s),
            aggregate=_series_aggregate(
                "fig14", lambda rec: rec.result.bandwidth_overhead),
        ),
        ExperimentSpec(
            name="fig15",
            title="Fig. 15: normalised energy per instruction",
            provenance="Fig. 15, Section VI-F",
            jobs=lambda w, c, s: _scheme_matrix("fig15", FIG15_SCHEMES,
                                                w, c, s),
            aggregate=_fig15_aggregate_with(None),
        ),
        ExperimentSpec(
            name="fig16",
            title="Fig. 16: L2 as a metadata victim cache",
            provenance="Fig. 16, Sections IV-D and VI-G",
            jobs=lambda w, c, s: _scheme_matrix(
                "fig16", [Scheme.SHM, Scheme.SHM_VL2], w, c, s),
            aggregate=_series_aggregate("fig16", _normalized_ipc),
        ),
        ExperimentSpec(
            name="ablation_mac_conflict",
            title="Ablation: dual-granularity MAC conflict policy",
            provenance="Tables III/IV remedies, Section IV-C",
            jobs=_mac_conflict_jobs,
            aggregate=_series_aggregate("ablation_mac_conflict",
                                        _normalized_ipc),
        ),
        ExperimentSpec(
            name="ablation_detector_sizing",
            title="Ablation: memory-access-tracker count",
            provenance="Table IX knob, Section V-A",
            jobs=_detector_sizing_jobs,
            aggregate=_series_aggregate("ablation_detector_sizing",
                                        _normalized_ipc),
        ),
        ExperimentSpec(
            name="ablation_bandwidth_sensitivity",
            title="Ablation: bandwidth-utilisation sensitivity",
            provenance="Table VII intensities, Section VI-B",
            jobs=_bandwidth_jobs,
            aggregate=_series_aggregate("ablation_bandwidth_sensitivity",
                                        _normalized_ipc),
        ),
        ExperimentSpec(
            name="ablation_mdc_size",
            title="Ablation: metadata-cache capacity",
            provenance="Table VI knob, Section IV-A",
            jobs=_mdc_jobs,
            aggregate=_series_aggregate("ablation_mdc_size",
                                        _normalized_ipc),
        ),
        ExperimentSpec(
            name="ablation_dram_scheduler",
            title="Ablation: DRAM service discipline",
            provenance="Scheduler layer (repro.memory.sched)",
            jobs=_dram_scheduler_jobs,
            aggregate=_series_aggregate("ablation_dram_scheduler",
                                        _normalized_ipc),
        ),
        ExperimentSpec(
            name="ablation_chunk_size",
            title="Ablation: streaming chunk size",
            provenance="Section IV-C (4 KB chunks, K = 32)",
            jobs=_chunk_jobs,
            aggregate=_series_aggregate("ablation_chunk_size",
                                        _normalized_ipc),
        ),
        ExperimentSpec(
            name="ablation_multitenant_contention",
            title="Multi-tenant metadata contention (1-8 tenants)",
            provenance="Extension: Section VI detectors under "
                       "multi-tenant traffic",
            jobs=_multitenant_jobs,
            aggregate=_series_aggregate("ablation_multitenant_contention",
                                        _normalized_ipc),
            cost_hint=1.5,
        ),
        ExperimentSpec(
            name="ablation_learned_policies",
            title="Ablation: learned vs. heuristic adaptive policies",
            provenance="Extension: ledger-trained detectors and "
                       "per-region scheme selection",
            jobs=_learned_jobs,
            aggregate=_learned_aggregate,
            cost_hint=2.5,
        ),
        ExperimentSpec(
            name="suite_phase_churn",
            title="Phase churn: detector re-convergence under "
                  "pattern flips",
            provenance="Extension: Section IV detectors under "
                       "phase churn",
            jobs=_phase_churn_jobs,
            aggregate=_series_aggregate("suite_phase_churn",
                                        _normalized_ipc),
            cost_hint=2.0,
        ),
    ]
}
