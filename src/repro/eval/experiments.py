"""Per-figure/table experiment drivers.

Each function regenerates one table or figure of the paper's evaluation
from simulation, returning plain data structures the benches assert on
and the reporting module renders.  All of them draw from a shared
:class:`repro.sim.runner.Runner` so results are simulated once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import DetectorConfig
from repro.common.types import Scheme
from repro.core.schemes import FIG12_SCHEMES, FIG13_SCHEMES, FIG14_SCHEMES
from repro.eval.energy import EnergyModel
from repro.sim.runner import Runner
from repro.sim.stats import mean
from repro.workloads.suite import BENCHMARK_NAMES

#: Default workload list for every experiment.
DEFAULT_WORKLOADS = list(BENCHMARK_NAMES)


@dataclass
class ExperimentResult:
    """One figure/table reproduction: per-workload series by scheme."""

    experiment: str
    #: series label -> {workload -> value}
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def average(self, label: str) -> float:
        return mean(self.series[label].values())

    def averages(self) -> Dict[str, float]:
        return {label: self.average(label) for label in self.series}


def _workloads(names: Optional[List[str]]) -> List[str]:
    return names if names is not None else DEFAULT_WORKLOADS


# ---------------------------------------------------------------------------
# Fig. 5 — streaming / read-only access ratios
# ---------------------------------------------------------------------------

def fig5_access_ratios(runner: Runner, workloads: Optional[List[str]] = None) -> ExperimentResult:
    result = ExperimentResult("fig5")
    stream: Dict[str, float] = {}
    readonly: Dict[str, float] = {}
    for name in _workloads(workloads):
        profile = runner.profile(name)
        stream[name] = profile.streaming_ratio
        readonly[name] = profile.readonly_ratio
    result.series["streaming"] = stream
    result.series["read_only"] = readonly
    return result


# ---------------------------------------------------------------------------
# Fig. 10 — read-only prediction breakdown
# ---------------------------------------------------------------------------

def fig10_readonly_prediction(runner: Runner, workloads: Optional[List[str]] = None) -> ExperimentResult:
    result = ExperimentResult("fig10")
    categories = ["correct", "mp_init", "mp_aliasing"]
    for cat in categories:
        result.series[cat] = {}
    for name in _workloads(workloads):
        stats = runner.run(name, Scheme.SHM).readonly_stats
        fractions = stats.as_fractions()
        for cat in categories:
            result.series[cat][name] = fractions[cat]
    return result


# ---------------------------------------------------------------------------
# Fig. 11 — streaming prediction breakdown
# ---------------------------------------------------------------------------

def fig11_streaming_prediction(runner: Runner, workloads: Optional[List[str]] = None) -> ExperimentResult:
    result = ExperimentResult("fig11")
    categories = [
        "correct", "mp_init", "mp_runtime_read_only",
        "mp_runtime_non_read_only", "mp_aliasing",
    ]
    for cat in categories:
        result.series[cat] = {}
    for name in _workloads(workloads):
        stats = runner.run(name, Scheme.SHM).streaming_stats
        fractions = stats.as_fractions()
        for cat in categories:
            result.series[cat][name] = fractions[cat]
    return result


# ---------------------------------------------------------------------------
# Fig. 12 — overall normalised IPC
# ---------------------------------------------------------------------------

def fig12_overall_ipc(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    schemes: Optional[List[Scheme]] = None,
) -> ExperimentResult:
    result = ExperimentResult("fig12")
    for scheme in schemes or FIG12_SCHEMES:
        result.series[scheme.value] = {
            name: runner.normalized_ipc(name, scheme)
            for name in _workloads(workloads)
        }
    return result


# ---------------------------------------------------------------------------
# Fig. 13 — optimisation breakdown
# ---------------------------------------------------------------------------

def fig13_optimization_breakdown(
    runner: Runner, workloads: Optional[List[str]] = None
) -> ExperimentResult:
    result = ExperimentResult("fig13")
    for scheme in FIG13_SCHEMES:
        result.series[scheme.value] = {
            name: runner.normalized_ipc(name, scheme)
            for name in _workloads(workloads)
        }
    return result


# ---------------------------------------------------------------------------
# Fig. 14 — bandwidth overheads
# ---------------------------------------------------------------------------

def fig14_bandwidth_overhead(
    runner: Runner, workloads: Optional[List[str]] = None
) -> ExperimentResult:
    result = ExperimentResult("fig14")
    for scheme in FIG14_SCHEMES:
        result.series[scheme.value] = {
            name: runner.run(name, scheme).bandwidth_overhead
            for name in _workloads(workloads)
        }
    return result


# ---------------------------------------------------------------------------
# Fig. 15 — energy per instruction
# ---------------------------------------------------------------------------

def fig15_energy(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    model: Optional[EnergyModel] = None,
) -> ExperimentResult:
    model = model or EnergyModel()
    result = ExperimentResult("fig15")
    for scheme in [Scheme.NAIVE, Scheme.COMMON_CTR, Scheme.PSSM, Scheme.SHM]:
        result.series[scheme.value] = {}
        for name in _workloads(workloads):
            run = runner.run(name, scheme)
            base = runner.baseline(name)
            result.series[scheme.value][name] = model.normalized_epi(run, base)
    return result


# ---------------------------------------------------------------------------
# Fig. 16 — L2 as a victim cache
# ---------------------------------------------------------------------------

def fig16_victim_cache(
    runner: Runner, workloads: Optional[List[str]] = None
) -> ExperimentResult:
    result = ExperimentResult("fig16")
    for scheme in [Scheme.SHM, Scheme.SHM_VL2]:
        result.series[scheme.value] = {
            name: runner.normalized_ipc(name, scheme)
            for name in _workloads(workloads)
        }
    return result


# ---------------------------------------------------------------------------
# Table IX — hardware overhead
# ---------------------------------------------------------------------------

def table9_hardware_overhead(
    detectors: Optional[DetectorConfig] = None, num_partitions: int = 12
) -> Dict[str, float]:
    cfg = detectors or DetectorConfig()
    per_partition_bits = cfg.partition_storage_bits()
    return {
        "readonly_predictor_bytes": cfg.readonly_entries / 8,
        "streaming_predictor_bytes": cfg.stream_entries / 8,
        "tracker_bits_each": cfg.tracker_storage_bits(),
        "trackers": cfg.num_trackers,
        "per_partition_bytes": per_partition_bits / 8,
        "total_bytes": per_partition_bits / 8 * num_partitions,
    }


# ---------------------------------------------------------------------------
# Ablation — dual-granularity MAC conflict policy
# ---------------------------------------------------------------------------

def ablation_mac_conflict_policy(
    runner: Runner, workloads: Optional[List[str]] = None
) -> ExperimentResult:
    result = ExperimentResult("ablation_mac_conflict")
    for policy in ("recheck", "update_both"):
        result.series[policy] = {}
        for name in _workloads(workloads):
            run = runner.run(name, Scheme.SHM, mac_conflict_policy=policy)
            result.series[policy][name] = run.normalized_ipc(runner.baseline(name))
    return result


# ---------------------------------------------------------------------------
# Ablation — detector sizing
# ---------------------------------------------------------------------------

def ablation_detector_sizing(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    tracker_counts: Optional[List[int]] = None,
) -> ExperimentResult:
    result = ExperimentResult("ablation_detector_sizing")
    for n in tracker_counts or [2, 8, 32]:
        label = f"mats_{n}"
        result.series[label] = {}
        for name in _workloads(workloads):
            run = runner.run(
                name, Scheme.SHM, detectors=DetectorConfig(num_trackers=n)
            )
            result.series[label][name] = run.normalized_ipc(runner.baseline(name))
    return result


# ---------------------------------------------------------------------------
# Ablation — bandwidth-utilisation sensitivity
# ---------------------------------------------------------------------------

def ablation_bandwidth_sensitivity(
    runner: Runner,
    workload: str = "kmeans",
    utilizations: Optional[List[float]] = None,
    schemes: Optional[List[Scheme]] = None,
) -> ExperimentResult:
    """Sweep one workload's calibrated bandwidth utilisation.

    The paper observes that secure-memory overheads concentrate on
    bandwidth-hungry workloads (atax at 23% barely notices naive
    metadata; fdtd2d at 92% is crushed).  This ablation isolates that
    effect: same address stream, different intensity.
    """
    from dataclasses import replace as dc_replace

    result = ExperimentResult("ablation_bandwidth_sensitivity")
    base_workload = runner.workload(workload)
    for scheme in schemes or [Scheme.NAIVE, Scheme.SHM]:
        result.series[scheme.value] = {}
    for util in utilizations or [0.2, 0.5, 0.8, 0.95]:
        variant = dc_replace(base_workload,
                             name=f"{workload}@{int(100 * util)}",
                             bandwidth_utilization=util)
        runner.add_workload(variant)
        baseline = runner.baseline(variant.name)
        for scheme in schemes or [Scheme.NAIVE, Scheme.SHM]:
            run = runner.run(variant.name, scheme)
            result.series[scheme.value][variant.name] = \
                run.normalized_ipc(baseline)
    return result


# ---------------------------------------------------------------------------
# Ablation — metadata cache (MDC) capacity
# ---------------------------------------------------------------------------

def ablation_mdc_size(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    sizes: Optional[List[int]] = None,
    scheme: Scheme = Scheme.PSSM,
) -> ExperimentResult:
    """Sweep the per-partition metadata cache capacity (Table VI uses
    2 KB each).  Each size needs its own :class:`SimConfig`, so this
    sweep builds sibling runners that share the parent's calibrations.
    """
    from dataclasses import replace

    from repro.common.config import CacheConfig, MDCConfig

    result = ExperimentResult("ablation_mdc_size")
    for size in sizes or [1024, 2048, 8192]:
        label = f"mdc_{size // 1024}kb"
        mdc = MDCConfig(
            counter=CacheConfig(size_bytes=size),
            mac=CacheConfig(size_bytes=size),
            bmt=CacheConfig(size_bytes=size),
        )
        sibling = Runner(config=replace(runner.config, mdc=mdc),
                         scale=runner.scale)
        sibling._workloads = runner._workloads
        sibling._calibrations = runner._calibrations
        result.series[label] = {
            name: sibling.run(name, scheme).normalized_ipc(
                runner.baseline(name))
            for name in _workloads(workloads)
        }
    return result


# ---------------------------------------------------------------------------
# Ablation — streaming chunk size
# ---------------------------------------------------------------------------

def ablation_chunk_size(
    runner: Runner,
    workloads: Optional[List[str]] = None,
    sizes: Optional[List[int]] = None,
) -> ExperimentResult:
    """Sweep the dual-granularity chunk size (the paper uses 4 KB with
    K = 32).  The MAT window scales with the chunk's block count."""
    result = ExperimentResult("ablation_chunk_size")
    for size in sizes or [2048, 4096, 8192]:
        label = f"chunk_{size // 1024}kb"
        detectors = DetectorConfig(
            stream_chunk_size=size,
            monitor_accesses=size // 128,
        )
        result.series[label] = {
            name: runner.run(name, Scheme.SHM, detectors=detectors)
            .normalized_ipc(runner.baseline(name))
            for name in _workloads(workloads)
        }
    return result
