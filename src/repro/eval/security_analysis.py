"""Security/bandwidth trade-off analysis (Section III-C).

The paper argues a MAC must keep at least ~50 bits of collision
resistance for a 4 GB device memory (birthday bound over 2^25 blocks),
which rules out PSSM's 4 B truncation as a bandwidth fix and motivates
the dual-granularity design: keep the full 8 B MAC but amortise it over
a whole chunk for streaming data.  This module produces that analysis
as data, so the trade-off can be tabulated and tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common import constants
from repro.crypto.mac import collision_resistance_updates, minimum_mac_bits


@dataclass(frozen=True)
class MACDesignPoint:
    """One MAC sizing option and its security/bandwidth properties."""

    label: str
    mac_bits: int
    #: Data bytes covered by one MAC.
    coverage_bytes: int

    @property
    def collision_updates(self) -> float:
        """Expected memory updates before a birthday collision."""
        return collision_resistance_updates(self.mac_bits)

    def is_safe(self, memory_bytes: int = constants.PROTECTED_MEMORY_BYTES) -> bool:
        """Does the MAC survive an attacker writing every block once?"""
        blocks = memory_bytes // constants.BLOCK_SIZE
        return self.collision_updates >= blocks

    @property
    def bandwidth_per_kb(self) -> float:
        """MAC bytes transferred per KB of protected data (uncached)."""
        return (self.mac_bits / 8) / (self.coverage_bytes / 1024)


def mac_design_space() -> List[MACDesignPoint]:
    """The design points Section III-C weighs against each other."""
    return [
        MACDesignPoint("cpu_8B_per_line", 64, constants.BLOCK_SIZE),
        MACDesignPoint("pssm_truncated_4B", 32, constants.BLOCK_SIZE),
        MACDesignPoint("minimum_safe_50b", 50, constants.BLOCK_SIZE),
        MACDesignPoint("shm_chunk_8B", 64, constants.STREAM_CHUNK_SIZE),
    ]


def truncation_analysis(memory_bytes: int = constants.PROTECTED_MEMORY_BYTES) -> dict:
    """The paper's argument, as numbers.

    Returns the minimum safe MAC bits for the memory size and, per
    design point, the collision bound, safety verdict and bandwidth.
    """
    points = {}
    for p in mac_design_space():
        points[p.label] = {
            "mac_bits": p.mac_bits,
            "collision_updates": p.collision_updates,
            "safe": p.is_safe(memory_bytes),
            "mac_bytes_per_kb": p.bandwidth_per_kb,
        }
    return {
        "memory_bytes": memory_bytes,
        "blocks": memory_bytes // constants.BLOCK_SIZE,
        "minimum_mac_bits": minimum_mac_bits(memory_bytes),
        "designs": points,
    }
