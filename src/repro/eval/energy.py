"""Event-count energy model (Fig. 15).

The paper extends GPUWattch + CACTI; here energy is accounted per
event: core energy per instruction, DRAM energy per byte, L2/MDC energy
per access, and static energy per cycle.  The constants are calibrated
so that on the baseline GPU the energy shares roughly match published
GPU power breakdowns (DRAM ~50%, leakage/static ~35% at half bandwidth
utilisation); *relative* energy-per-instruction between schemes — the
quantity Fig. 15 reports — then follows from the simulated event
counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import RunResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants (arbitrary units; only ratios matter)."""

    per_instruction: float = 2.5
    per_dram_byte: float = 1.0
    per_l2_access: float = 8.0
    per_mdc_access: float = 1.0
    static_per_cycle: float = 78.0

    def total(self, result: RunResult) -> float:
        """Total energy of one run."""
        return (
            self.per_instruction * result.instructions
            + self.per_dram_byte * result.traffic.total_bytes
            + self.per_l2_access * result.l2.accesses
            + self.per_mdc_access * result.mdc_accesses
            + self.static_per_cycle * result.cycles
        )

    def per_instr(self, result: RunResult) -> float:
        """Energy per instruction (the Fig. 15 metric)."""
        if result.instructions == 0:
            return 0.0
        return self.total(result) / result.instructions

    def normalized_epi(self, result: RunResult, baseline: RunResult) -> float:
        """Energy per instruction normalised to the unprotected GPU."""
        base = self.per_instr(baseline)
        if base == 0:
            return 0.0
        return self.per_instr(result) / base

    def breakdown(self, result: RunResult) -> dict:
        """Energy shares by component."""
        total = self.total(result) or 1.0
        return {
            "core": self.per_instruction * result.instructions / total,
            "dram": self.per_dram_byte * result.traffic.total_bytes / total,
            "l2": self.per_l2_access * result.l2.accesses / total,
            "mdc": self.per_mdc_access * result.mdc_accesses / total,
            "static": self.static_per_cycle * result.cycles / total,
        }
