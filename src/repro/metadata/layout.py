"""Security-metadata geometry: where counters, MACs and BMT nodes live.

All metadata is stored in a carve-out of device memory above the
protected 4 GB range.  Identifiers can be derived either from
*partition-local* addresses (PSSM and all SHM variants — metadata for a
partition's data lives in the same partition, no cross-partition
redundancy) or from *physical* addresses (Naive / Common_ctr — the same
metadata line covers data striped across partitions, so several
partitions fetch private copies of it).

Geometry (with 128 B lines and 32 B sectors):

====================  =====================  ======================
metadata              one 128 B line covers   one 32 B sector covers
====================  =====================  ======================
split counters        16 KB data (128 blks)   4 KB data (32 blks)
block MACs            2 KB data (16 blks)     512 B data (4 blks)
chunk MACs            64 KB data (16 chunks)  16 KB data (4 chunks)
BMT level-k nodes     16 children             4 children
====================  =====================  ======================
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.common import constants

#: Data blocks whose counters share one 128 B counter line.
CTR_LINE_COVERAGE_BLOCKS = 128
#: Data blocks whose counters share one 32 B counter sector.
CTR_SECTOR_COVERAGE_BLOCKS = CTR_LINE_COVERAGE_BLOCKS // constants.SECTORS_PER_BLOCK

#: Data blocks whose MACs share one 128 B MAC line / 32 B sector.
MAC_LINE_COVERAGE_BLOCKS = constants.MACS_PER_BLOCK
MAC_SECTOR_COVERAGE_BLOCKS = MAC_LINE_COVERAGE_BLOCKS // constants.SECTORS_PER_BLOCK

#: 4 KB chunks whose chunk-MACs share one 128 B line / 32 B sector.
CMAC_LINE_COVERAGE_CHUNKS = constants.MACS_PER_BLOCK
CMAC_SECTOR_COVERAGE_CHUNKS = CMAC_LINE_COVERAGE_CHUNKS // constants.SECTORS_PER_BLOCK

#: Key-space offset separating chunk-MAC lines from block-MAC lines
#: inside the shared MAC cache.
CHUNK_MAC_KEY_BASE = 1 << 40

#: Key-space stride separating BMT levels inside the BMT cache.
BMT_LEVEL_KEY_BASE = 1 << 40


@dataclass(frozen=True)
class SectorRef:
    """One 32 B metadata sector: a cache key plus sector index."""

    line_key: int
    sector: int


@lru_cache(maxsize=None)
def counter_sector(block_id: int) -> SectorRef:
    """Counter sector protecting data block ``block_id``.

    Memoized (as are the other sector-geometry functions): the mapping
    is pure, the same blocks recur constantly on the per-miss hot
    path, and memoization also avoids re-allocating the frozen
    :class:`SectorRef` every call.
    """
    sector_id = block_id // CTR_SECTOR_COVERAGE_BLOCKS
    return SectorRef(sector_id // constants.SECTORS_PER_BLOCK,
                     sector_id % constants.SECTORS_PER_BLOCK)


def counter_line(block_id: int) -> int:
    return block_id // CTR_LINE_COVERAGE_BLOCKS


@lru_cache(maxsize=None)
def mac_sector(block_id: int, mac_size: int = constants.MAC_SIZE) -> SectorRef:
    """Block-MAC sector holding data block ``block_id``'s MAC.

    ``mac_size`` supports PSSM's truncation study: a 4 B MAC packs
    twice as many MACs per sector, halving MAC traffic — at the cost
    of falling below the Section III-C birthday bound (see
    :func:`repro.crypto.mac.minimum_mac_bits`).
    """
    per_sector = constants.SECTOR_SIZE // mac_size
    sector_id = block_id // per_sector
    return SectorRef(sector_id // constants.SECTORS_PER_BLOCK,
                     sector_id % constants.SECTORS_PER_BLOCK)


@lru_cache(maxsize=None)
def chunk_mac_sector(chunk_id: int, mac_size: int = constants.MAC_SIZE) -> SectorRef:
    """Chunk-MAC sector holding 4 KB chunk ``chunk_id``'s MAC.

    The returned key is offset into the chunk-MAC key space so chunk
    MACs and block MACs never collide inside the shared MAC cache.
    """
    per_sector = constants.SECTOR_SIZE // mac_size
    sector_id = chunk_id // per_sector
    return SectorRef(
        CHUNK_MAC_KEY_BASE + sector_id // constants.SECTORS_PER_BLOCK,
        sector_id % constants.SECTORS_PER_BLOCK,
    )


def bmt_leaf(block_id: int) -> int:
    """BMT leaf index covering data block ``block_id``.

    The BMT covers encryption counters, one leaf per counter line.
    """
    return counter_line(block_id)


@lru_cache(maxsize=None)
def bmt_node_sector(level: int, node_id: int) -> SectorRef:
    """Cache sector of BMT node ``node_id`` at tree ``level`` (1-based:
    level 1 is the parents of the leaves)."""
    sector_id = node_id // (constants.SECTORS_PER_BLOCK)
    return SectorRef(
        level * BMT_LEVEL_KEY_BASE + sector_id // constants.SECTORS_PER_BLOCK,
        sector_id % constants.SECTORS_PER_BLOCK,
    )


def bmt_levels(protected_bytes: int) -> int:
    """Number of BMT levels above the leaves for a protected range."""
    leaves = max(1, protected_bytes // (CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE))
    levels = 0
    span = leaves
    while span > 1:
        span = (span + constants.BMT_ARITY - 1) // constants.BMT_ARITY
        levels += 1
    return max(1, levels)


@dataclass(frozen=True)
class MetadataLayout:
    """DRAM placement of the metadata carve-out (physical routing).

    Only physically-addressed schemes need real metadata addresses —
    to decide which partition's DRAM channel a metadata transfer
    occupies.  Local schemes route metadata to the owning partition.
    """

    protected_bytes: int = constants.PROTECTED_MEMORY_BYTES

    @property
    def counter_base(self) -> int:
        return self.protected_bytes

    @property
    def counter_space(self) -> int:
        lines = self.protected_bytes // (CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE)
        return lines * constants.BLOCK_SIZE

    @property
    def mac_base(self) -> int:
        return self.counter_base + self.counter_space

    @property
    def mac_space(self) -> int:
        return (self.protected_bytes // constants.BLOCK_SIZE) * constants.MAC_SIZE

    @property
    def chunk_mac_base(self) -> int:
        return self.mac_base + self.mac_space

    @property
    def chunk_mac_space(self) -> int:
        return (self.protected_bytes // constants.STREAM_CHUNK_SIZE) * constants.MAC_SIZE

    @property
    def bmt_base(self) -> int:
        return self.chunk_mac_base + self.chunk_mac_space

    # The address methods are memoized: MetadataLayout is frozen (so
    # hashable) and the same metadata lines recur constantly; caching
    # also spares the per-call property chains, which recompute the
    # carve-out bases from scratch.  Value-equal layouts share entries.

    @lru_cache(maxsize=None)
    def counter_address(self, line_key: int) -> int:
        return self.counter_base + line_key * constants.BLOCK_SIZE

    @lru_cache(maxsize=None)
    def mac_address(self, line_key: int) -> int:
        if line_key >= CHUNK_MAC_KEY_BASE:
            return self.chunk_mac_base + (line_key - CHUNK_MAC_KEY_BASE) * constants.BLOCK_SIZE
        return self.mac_base + line_key * constants.BLOCK_SIZE

    @lru_cache(maxsize=None)
    def bmt_address(self, line_key: int) -> int:
        level, line = divmod(line_key, BMT_LEVEL_KEY_BASE)
        # Levels are packed consecutively; spans shrink by the arity
        # per level, so offset by the cumulative span of lower levels.
        leaves = self.protected_bytes // (CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE)
        offset_lines = 0
        span = (leaves + constants.BMT_ARITY - 1) // constants.BMT_ARITY
        for _ in range(1, level):
            offset_lines += (span + constants.SECTORS_PER_BLOCK - 1)
            span = (span + constants.BMT_ARITY - 1) // constants.BMT_ARITY
        return self.bmt_base + (offset_lines + line) * constants.BLOCK_SIZE
