"""Security-metadata layer: layout, counter state, MDCs, BMT walker."""

from repro.metadata.bmt import BMTWalker
from repro.metadata.caches import (
    KIND_BMT,
    KIND_CTR,
    KIND_MAC,
    DisplacedData,
    MetadataCaches,
    MetaTransfer,
)
from repro.metadata.counters import (
    MINOR_OVERFLOW,
    CommonCounterTable,
    CounterFile,
    SharedCounter,
)
from repro.metadata.layout import (
    CHUNK_MAC_KEY_BASE,
    CTR_LINE_COVERAGE_BLOCKS,
    CTR_SECTOR_COVERAGE_BLOCKS,
    MAC_LINE_COVERAGE_BLOCKS,
    MAC_SECTOR_COVERAGE_BLOCKS,
    MetadataLayout,
    SectorRef,
    bmt_leaf,
    bmt_levels,
    chunk_mac_sector,
    counter_line,
    counter_sector,
    mac_sector,
)

__all__ = [
    "BMTWalker",
    "KIND_BMT",
    "KIND_CTR",
    "KIND_MAC",
    "DisplacedData",
    "MetadataCaches",
    "MetaTransfer",
    "MINOR_OVERFLOW",
    "CommonCounterTable",
    "CounterFile",
    "SharedCounter",
    "CHUNK_MAC_KEY_BASE",
    "CTR_LINE_COVERAGE_BLOCKS",
    "CTR_SECTOR_COVERAGE_BLOCKS",
    "MAC_LINE_COVERAGE_BLOCKS",
    "MAC_SECTOR_COVERAGE_BLOCKS",
    "MetadataLayout",
    "SectorRef",
    "bmt_leaf",
    "bmt_levels",
    "chunk_mac_sector",
    "counter_line",
    "counter_sector",
    "mac_sector",
]
