"""The per-partition security-metadata caches (MDC, Table VI).

Three 2 KB sectored caches — counters, MACs (block- and chunk-level
share one cache under disjoint key spaces) and BMT nodes — filter
metadata traffic before it reaches DRAM.  When the L2 victim-cache mode
is active (Section IV-D), lines evicted from an MDC are parked in the
partition's L2 and misses probe the L2 before going to DRAM.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.common import constants
from repro.common.config import MDCConfig
from repro.memory.cache import Eviction, SectoredCache, stable_hash
from repro.memory.l2 import PartitionL2
from repro.obs.observer import NULL_OBSERVER
from repro.perf.hostprof import NULL_PROFILER

KIND_CTR = "ctr"
KIND_MAC = "mac"
KIND_BMT = "bmt"


class MetaTransfer:
    """One DRAM transfer caused by metadata handling (``__slots__``:
    one is allocated per MDC miss and per dirty metadata eviction)."""

    __slots__ = ("kind", "line_key", "size", "is_write")

    def __init__(self, kind: str, line_key: int, size: int,
                 is_write: bool) -> None:
        self.kind = kind  # ctr / mac / bmt
        self.line_key = line_key
        self.size = size
        self.is_write = is_write

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetaTransfer(kind={self.kind!r}, "
                f"line_key={self.line_key}, size={self.size}, "
                f"is_write={self.is_write})")


class DisplacedData:
    """A dirty data line displaced from the L2 by a victim insertion;
    the owner must route it through the secure write path."""

    __slots__ = ("line_key", "dirty_sectors")

    def __init__(self, line_key: int, dirty_sectors: int) -> None:
        self.line_key = line_key
        self.dirty_sectors = dirty_sectors


#: Shared empty result sequences: the overwhelmingly common MDC hit
#: causes no transfers and displaces nothing, so the hit fast path
#: returns these instead of allocating two lists per access.
_NO_TRANSFERS: Sequence[MetaTransfer] = ()
_NO_DISPLACED: Sequence[DisplacedData] = ()


class MetadataCaches:
    """Counter, MAC and BMT caches of one memory partition."""

    def __init__(self, mdc: MDCConfig, partition_id: int,
                 observer=None, profiler=None) -> None:
        self.partition_id = partition_id
        self.counter = SectoredCache(mdc.counter, name=f"ctr-p{partition_id}")
        self.mac = SectoredCache(mdc.mac, name=f"mac-p{partition_id}")
        self.bmt = SectoredCache(mdc.bmt, name=f"bmt-p{partition_id}")
        self._caches = {
            KIND_CTR: self.counter,
            KIND_MAC: self.mac,
            KIND_BMT: self.bmt,
        }
        # Victim-cache plumbing (set by the partition when SHM_vL2).
        self.l2: Optional[PartitionL2] = None
        self.victim_enabled = lambda: False
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._observe = self.obs.enabled
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._profile = self.profiler.enabled
        #: Current access cycle, maintained by the owning MEE when
        #: observation is on (the MDC interface itself is cycle-free).
        self.now = 0.0

    def _cache_for(self, kind: str) -> SectoredCache:
        cache = self._caches.get(kind)
        if cache is None:
            raise ValueError(f"unknown metadata kind: {kind}")
        return cache

    def access(
        self,
        kind: str,
        line_key: int,
        sector: int,
        is_write: bool = False,
        fetch_on_miss: bool = True,
        sectors_on_miss: int = 1,
    ) -> Tuple[Sequence[MetaTransfer], Sequence[DisplacedData], bool]:
        """Access one metadata sector.

        ``sectors_on_miss`` models non-sectored metadata handling
        (Naive fetches the whole 128 B line on a miss; PSSM fetches one
        32 B sector).

        Returns (DRAM transfers, displaced dirty data lines, hit).
        The first transfer, when present and a read, is the demand
        fetch — the caller marks counter fetches as decrypt-critical.
        The sequences are shared immutable empties when nothing
        happened — callers must not mutate them.
        """
        profile = self._profile
        if profile:
            t0 = self.profiler.now()
        result = self._access(kind, line_key, sector, is_write,
                              fetch_on_miss, sectors_on_miss)
        if profile:
            self.profiler.add_component(
                "metadata_caches", self.profiler.now() - t0)
        return result

    def _access(
        self,
        kind: str,
        line_key: int,
        sector: int,
        is_write: bool,
        fetch_on_miss: bool,
        sectors_on_miss: int,
    ) -> Tuple[Sequence[MetaTransfer], Sequence[DisplacedData], bool]:
        """:meth:`access` minus profiler timing (so bulk callers can
        time a whole path as one component interval)."""
        cache = self._caches.get(kind)
        if cache is None:
            raise ValueError(f"unknown metadata kind: {kind}")

        result = cache.access(line_key, sector, is_write=is_write,
                              fetch_on_miss=fetch_on_miss)
        if self._observe:
            self.obs.mdc_access(self.now, self.partition_id, kind, result.hit)
        if result.hit:
            return _NO_TRANSFERS, _NO_DISPLACED, True

        transfers: List[MetaTransfer] = []
        displaced: List[DisplacedData] = []
        if result.needs_fetch:
            served_by_victim = False
            if self.victim_enabled() and self.l2 is not None:
                served_by_victim = self._victim_fetch(kind, line_key, sector, cache)
            if not served_by_victim:
                extra = 0
                if sectors_on_miss > 1:
                    # Whole-line fill: account the additional sectors.
                    extra = (sectors_on_miss - 1) * constants.SECTOR_SIZE
                    self._fill_line(cache, line_key)
                transfers.append(
                    MetaTransfer(kind, line_key, constants.SECTOR_SIZE + extra,
                                 is_write=False)
                )

        if result.eviction is not None:
            transfers_e, displaced_e = self._handle_eviction(kind, result.eviction)
            transfers.extend(transfers_e)
            displaced.extend(displaced_e)
        return transfers, displaced, False

    def access_path(
        self,
        kind: str,
        refs: Sequence[Tuple[int, int]],
        is_write: bool,
        sectors_on_miss: int,
        stop_at_hit: bool,
        transfers: List[MetaTransfer],
        displaced: List[DisplacedData],
    ) -> int:
        """One-pass probe of an ordered metadata path (a BMT walk).

        Accesses each ``(line_key, sector)`` ref in order, appending
        DRAM transfers / displaced dirty data to the caller's lists;
        when ``stop_at_hit`` the walk ends after the first hit (that
        ancestor is already verified on chip).  Statistics, LRU order,
        victim interactions and observer events are identical to the
        equivalent per-node :meth:`access` loop — the hit fast path
        below replicates :meth:`SectoredCache.access`'s resident-sector
        branch inline, misses fall back to the full path.  Returns the
        number of nodes probed.  Refs must carry in-range sectors
        (tree layout math guarantees it).
        """
        profile = self._profile
        if profile:
            t0 = self.profiler.now()
        cache = self._caches.get(kind)
        if cache is None:
            raise ValueError(f"unknown metadata kind: {kind}")
        sets = cache._sets
        num_sets = cache.num_sets
        observe = self._observe
        touched = 0
        for key, sector in refs:
            touched += 1
            lines = sets[key % num_sets if type(key) is int
                         else cache.set_index(key)]
            line = lines.get(key)
            bit = 1 << sector
            if line is not None and line.valid_mask & bit:
                cache.accesses += 1
                cache.hits += 1
                if is_write:
                    line.dirty_mask |= bit
                if next(reversed(lines)) is not key:
                    del lines[key]
                    lines[key] = line
                if observe:
                    self.obs.mdc_access(self.now, self.partition_id, kind,
                                        True)
                if stop_at_hit:
                    break
                continue
            t, d, hit = self._access(kind, key, sector, is_write, True,
                                     sectors_on_miss)
            if t:
                transfers.extend(t)
            if d:
                displaced.extend(d)
            if hit and stop_at_hit:  # pragma: no cover - resident probe
                break  # already caught by the fast path above
        if profile:
            self.profiler.add_component(
                "metadata_caches", self.profiler.now() - t0)
        return touched

    def clean(self, kind: str, line_key: int, sector: int) -> bool:
        """Drop a resident sector's dirty bit (write traffic averted)."""
        return self._cache_for(kind).clean(line_key, sector)

    def flush(self) -> List[MetaTransfer]:
        """End-of-run flush of all dirty metadata (bypasses the victim
        path: at context teardown everything must reach DRAM)."""
        transfers = []
        for kind in (KIND_CTR, KIND_MAC, KIND_BMT):
            for ev in self._cache_for(kind).flush():
                if ev.dirty_sectors:
                    transfers.append(
                        MetaTransfer(kind, ev.key,
                                     ev.dirty_sectors * constants.SECTOR_SIZE,
                                     is_write=True)
                    )
        return transfers

    # -- Internals ------------------------------------------------------------

    def _fill_line(self, cache: SectoredCache, line_key: int) -> None:
        """Mark every sector of a just-allocated line resident (the
        non-sectored whole-line fill)."""
        cache.fill_all_sectors(line_key)

    def _victim_fetch(
        self, kind: str, line_key: int, sector: int, cache: SectoredCache
    ) -> bool:
        """Try to serve a miss from the L2 victim store."""
        bank = self.l2.bank_for(
            line_key if isinstance(line_key, int) else stable_hash(line_key)
        )
        hit = bank.victim_probe((kind, line_key), sector)
        if self._observe:
            self.obs.victim_probe(self.now, self.partition_id, hit)
        if not hit:
            return False
        evicted = bank.victim_remove((kind, line_key))
        if evicted is not None and evicted.dirty_sectors:
            # Dirtiness travels back into the MDC with the line.
            cache.access(line_key, sector, is_write=True, fetch_on_miss=False)
        return True

    def _handle_eviction(
        self, kind: str, eviction: Eviction
    ) -> Tuple[List[MetaTransfer], List[DisplacedData]]:
        transfers: List[MetaTransfer] = []
        displaced: List[DisplacedData] = []
        if self.victim_enabled() and self.l2 is not None and eviction.valid_sectors:
            key = eviction.key
            bank = self.l2.bank_for(
                key if isinstance(key, int) else stable_hash(key)
            )
            for disp in bank.victim_insert(
                (kind, key), eviction.valid_sectors, dirty=eviction.dirty_sectors > 0
            ):
                transfers_d, displaced_d = self._classify_displaced(disp)
                transfers.extend(transfers_d)
                displaced.extend(displaced_d)
            return transfers, displaced
        if eviction.dirty_sectors:
            transfers.append(
                MetaTransfer(kind, eviction.key,
                             eviction.dirty_sectors * constants.SECTOR_SIZE,
                             is_write=True)
            )
        return transfers, displaced

    def _classify_displaced(
        self, disp: Eviction
    ) -> Tuple[List[MetaTransfer], List[DisplacedData]]:
        """A line displaced from the L2 by a victim insertion is either
        a dirty victim metadata line (write it to DRAM) or a dirty data
        line (hand it back for the secure write path)."""
        key = disp.key
        if isinstance(key, tuple) and len(key) == 2 and key[0] == "v":
            kind, line_key = key[1]
            return (
                [MetaTransfer(kind, line_key,
                              disp.dirty_sectors * constants.SECTOR_SIZE,
                              is_write=True)],
                [],
            )
        return [], [DisplacedData(line_key=key, dirty_sectors=disp.dirty_sectors)]
