"""Runtime encryption-counter state.

Three cooperating pieces:

* :class:`SharedCounter` — the single on-chip register all read-only
  regions use as their major counter (Section III-B).  Bumped by the
  ``input_read_only_reset`` API to prevent cross-kernel replay.
* :class:`CounterFile` — per-block split-counter values (write counts),
  minor-counter overflow detection and the per-region major counters
  needed by the shared-counter propagation and the reset-API scan.
* :class:`CommonCounterTable` — the Common Counters scheme [17]:
  a region whose blocks all hold the same counter value needs no
  off-chip counter fetch at all.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.common import constants
from repro.metadata.layout import CTR_LINE_COVERAGE_BLOCKS

#: Writes before a 7-bit minor counter overflows.
MINOR_OVERFLOW = 2 ** constants.MINOR_COUNTER_BITS


class SharedCounter:
    """The on-chip shared counter register for read-only regions."""

    def __init__(self, initial: int = 1) -> None:
        if initial < 0:
            raise ValueError("shared counter must be non-negative")
        self.value = initial
        self.resets = 0

    def raise_to(self, floor: int) -> int:
        """Reset path (Fig. 9): lift the register to at least ``floor``
        (the max major counter scanned from the reset range) plus one,
        so previously used (counter, address) pairs can never recur."""
        self.value = max(self.value, floor + 1)
        self.resets += 1
        return self.value


class CounterFile:
    """Split-counter values for every written block of one partition.

    Blocks never written hold the initial value zero and are not
    materialised.  The *major* counter is tracked per counter line
    (16 KB of data); the *minor* counter per block.  Minor overflow
    rolls the line's major and signals a re-encryption of the line's
    whole coverage (the caller charges the traffic).
    """

    def __init__(self) -> None:
        self._minor: Dict[int, int] = {}
        self._major: Dict[int, int] = {}
        self.overflows = 0

    def minor(self, block_id: int) -> int:
        return self._minor.get(block_id, 0)

    def major(self, line_key: int) -> int:
        return self._major.get(line_key, 0)

    def record_write(self, block_id: int) -> bool:
        """Count one write; returns True when the minor overflowed
        (the line's coverage must be re-encrypted)."""
        value = self._minor.get(block_id, 0) + 1
        if value >= MINOR_OVERFLOW:
            line = block_id // CTR_LINE_COVERAGE_BLOCKS
            self._major[line] = self._major.get(line, 0) + 1
            # Re-encryption resets every minor in the line's coverage.
            base = line * CTR_LINE_COVERAGE_BLOCKS
            for b in range(base, base + CTR_LINE_COVERAGE_BLOCKS):
                self._minor.pop(b, None)
            self.overflows += 1
            return True
        self._minor[block_id] = value
        return False

    def set_major(self, line_key: int, value: int) -> None:
        """Shared-counter propagation (Fig. 8): adopt the shared counter
        as the line's major and zero the minors."""
        self._major[line_key] = value
        base = line_key * CTR_LINE_COVERAGE_BLOCKS
        for b in range(base, base + CTR_LINE_COVERAGE_BLOCKS):
            self._minor.pop(b, None)

    def max_major_in_lines(self, line_keys: Iterable[int]) -> int:
        """Reset-API scan (Fig. 9): max major counter over a range."""
        return max((self._major.get(k, 0) for k in line_keys), default=0)


class CommonCounterTable:
    """Common-counter compression [17] at counter-line granularity.

    A line (16 KB of data, 128 blocks) is *common* while every block in
    it carries the same counter value — true for never-written data and
    for uniformly re-written streaming buffers.  Common lines need no
    counter fetch and no BMT traversal (their single common value is
    held and protected on chip).
    """

    def __init__(self) -> None:
        # line key -> per-block write counts (only diverged lines kept).
        self._diverged: Dict[int, Dict[int, int]] = {}
        self.divergences = 0
        self.reconvergences = 0

    def is_common(self, line_key: int) -> bool:
        return line_key not in self._diverged

    def record_write(self, line_key: int, block_id: int) -> bool:
        """Count a write; returns True when the line is common *after*
        the write (i.e. the write needed no per-block counter)."""
        counts = self._diverged.get(line_key)
        if counts is None:
            counts = {}
            self._diverged[line_key] = counts
            self.divergences += 1
        counts[block_id] = counts.get(block_id, 0) + 1
        if len(counts) == CTR_LINE_COVERAGE_BLOCKS:
            values = set(counts.values())
            if len(values) == 1:
                # Every block written the same number of times: the
                # line re-converged to a common counter.
                del self._diverged[line_key]
                self.reconvergences += 1
                return True
        return False
