"""Integrity-tree traversal cost model.

The functional trees live in :mod:`repro.crypto.merkle` (BMT) and
:mod:`repro.crypto.counter_tree` (SGX-style); this module answers the
*traffic* question: which tree-node sectors must be touched to verify
or update one counter line, given the tree cache state.

Two traversal disciplines are supported, matching the paper's claim
that its schemes are integrity-tree independent:

* **BMT** (default, arity 16): the standard cached-tree optimisation —
  a node found in the cache is trusted, so traversal stops at the
  first hit for both reads and writes (lazy re-hash on eviction).
* **Counter tree** (SGX style, arity 8): reads stop at the first
  cached ancestor too, but writes bump version counters *eagerly* all
  the way to the on-chip root, dirtying every level.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.common import constants
from repro.metadata.caches import DisplacedData, MetadataCaches, MetaTransfer, KIND_BMT
from repro.metadata.layout import BMT_LEVEL_KEY_BASE


@lru_cache(maxsize=None)
def _path_refs(levels: int, arity: int,
               leaf_index: int) -> Tuple[Tuple[int, int], ...]:
    """The ``(line_key, sector)`` of every tree node on one leaf's
    path, bottom-up, excluding the on-chip root (level ``levels``).

    Pure tree-layout arithmetic, so it is memoised process-wide: a walk
    becomes one cached lookup plus a single batched cache probe instead
    of per-level division chains.  The key space is bounded by the
    counter lines a workload actually touches.
    """
    spb = constants.SECTORS_PER_BLOCK
    refs = []
    node = leaf_index
    for level in range(1, levels):
        node //= arity
        refs.append((level * BMT_LEVEL_KEY_BASE + node // (spb * spb),
                     (node // spb) % spb))
    return tuple(refs)


def tree_levels(protected_bytes: int, arity: int) -> int:
    """Levels above the leaves for a protected range."""
    leaves = max(1, protected_bytes // (128 * constants.BLOCK_SIZE))
    levels = 0
    span = leaves
    while span > 1:
        span = (span + arity - 1) // arity
        levels += 1
    return max(1, levels)


class BMTWalker:
    """Walks counter-line leaves up the per-partition (or global) tree."""

    def __init__(
        self,
        protected_bytes: int,
        arity: int = constants.BMT_ARITY,
        eager_writes: bool = False,
    ) -> None:
        if arity < 2:
            raise ValueError("tree arity must be at least 2")
        self.arity = arity
        self.eager_writes = eager_writes
        self.levels = tree_levels(protected_bytes, arity)
        self.walks = 0
        self.nodes_touched = 0

    def walk(
        self,
        caches: MetadataCaches,
        leaf_index: int,
        is_write: bool,
        sectors_on_miss: int = 1,
    ) -> Tuple[List[MetaTransfer], List[DisplacedData]]:
        """Verify (read) or update (write) the path of one leaf.

        Reads stop at the first level that hits in the tree cache —
        that ancestor is already verified/owned on chip.  Writes do
        the same under the lazy (BMT) discipline, or continue to the
        top under the eager (counter-tree) discipline.  The root
        itself is on chip and never generates traffic.
        """
        self.walks += 1
        transfers: List[MetaTransfer] = []
        displaced: List[DisplacedData] = []
        refs = _path_refs(self.levels, self.arity, leaf_index)
        if refs:
            stop_at_hit = not (is_write and self.eager_writes)
            self.nodes_touched += caches.access_path(
                KIND_BMT, refs, is_write, sectors_on_miss, stop_at_hit,
                transfers, displaced,
            )
        return transfers, displaced
