"""The Memory Encryption Engine (Section IV-A, Fig. 6).

One MEE sits in each memory controller.  Every L2 miss and every L2
write back flows through it; the MEE decides — per the active scheme —
which security metadata must move between the metadata caches and
DRAM:

* encryption counters (skipped for read-only regions via the shared
  counter, and for common-counter lines);
* MACs at block or chunk granularity (the dual-granularity design,
  driven by the streaming detector, with the misprediction handling of
  Tables III and IV);
* BMT nodes (skipped entirely for read-only regions — Fig. 4).

The MEE is a *traffic* model: it returns the DRAM requests an access
causes.  The functional encrypt/verify path lives in
:mod:`repro.core.functional`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common import constants
from repro.common.address import AddressMapper
from repro.common.config import SimConfig
from repro.common.types import Pattern, PredictionStats
from repro.memory.cache import _Line, _popcount
from repro.core.policies import build_policies
from repro.core.readonly import ReadOnlyDetector
from repro.core.streaming import StreamingDetector
from repro.metadata import layout as mlayout
from repro.metadata.caches import (
    KIND_BMT,
    KIND_CTR,
    KIND_MAC,
    DisplacedData,
    MetadataCaches,
    MetaTransfer,
)
from repro.metadata.counters import CommonCounterTable, CounterFile, SharedCounter
from repro.obs.decisions import NULL_LEDGER
from repro.obs.observer import NULL_OBSERVER


class DRAMRequest:
    """One DRAM transfer the simulator must schedule.

    A ``__slots__`` class rather than a dataclass: several instances
    are created per secure L2 miss, so instance-dict allocation is
    measurable hot-path overhead.

    ``critical`` is True when decryption of the demand data waits on
    this transfer (a counter fetch); MAC and BMT transfers are off the
    critical path — data is forwarded to the cores before
    verification.  ``address`` is the metadata carve-out address of
    the transfer (-1 when the request has no single address, e.g. a
    bulk re-encryption); only address-aware DRAM schedulers (the
    banked row-buffer model) consume it.
    """

    __slots__ = ("partition", "size", "is_write", "kind", "critical",
                 "address")

    def __init__(self, partition: int, size: int, is_write: bool,
                 kind: str,  # data / ctr / mac / bmt / mispred
                 critical: bool = False, address: int = -1) -> None:
        self.partition = partition
        self.size = size
        self.is_write = is_write
        self.kind = kind
        self.critical = critical
        self.address = address

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DRAMRequest(partition={self.partition}, size={self.size}, "
            f"is_write={self.is_write}, kind={self.kind!r}, "
            f"critical={self.critical}, address={self.address})"
        )


class MEEResult:
    """Everything one data access caused.

    ``displaced_data`` holds dirty data lines displaced from the L2 by
    victim insertions; the simulator must run them through the write
    path.  A ``__slots__`` class: one instance is created per L2 miss
    and per write-back.
    """

    __slots__ = ("requests", "displaced_data")

    def __init__(self, requests: Optional[List[DRAMRequest]] = None,
                 displaced_data: Optional[List[DisplacedData]] = None) -> None:
        self.requests: List[DRAMRequest] = (
            [] if requests is None else requests
        )
        self.displaced_data: List[DisplacedData] = (
            [] if displaced_data is None else displaced_data
        )


class TruthProvider:
    """Oracle ground truth from the profiling pass (see
    :mod:`repro.sim.profiling`).  The default implementation knows
    nothing and disables prediction-accuracy accounting."""

    def readonly_truth(self, partition: int, kernel: int, region: int) -> Optional[bool]:
        return None

    def stream_truth(self, partition: int, chunk: int, seq: int) -> Optional[Pattern]:
        return None

    def first_phase_patterns(self, partition: int) -> Dict[int, Pattern]:
        return {}

    def readonly_regions(self, partition: int, kernel: int) -> List[int]:
        return []


class MemoryEncryptionEngine:
    """One partition's MEE plus its detectors and metadata caches."""

    def __init__(
        self,
        partition_id: int,
        config: SimConfig,
        mapper: AddressMapper,
        shared_counter: SharedCounter,
        truth: Optional[TruthProvider] = None,
        observer=None,
        profiler=None,
        ledger=None,
    ) -> None:
        self.partition_id = partition_id
        self.config = config
        self.scheme = config.scheme
        self.mapper = mapper
        self.shared_counter = shared_counter
        self.truth = truth or TruthProvider()
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._observe = self.obs.enabled
        # Decision ledger: a *separate* channel from the observer.  It
        # taps at decision granularity only, so — unlike an observer —
        # it does NOT flip _observe, does not degrade _fast_meta and
        # never disarms direct emission: ledgered runs keep the event
        # core and its fused fast paths.
        self.led = ledger if ledger is not None else NULL_LEDGER
        self._led = self.led.enabled
        # Cost scope (see _led_begin/_led_end): while _led_track is
        # set, every emission funnel accumulates the bytes/transfers it
        # books, so a decision's remedial traffic is charged to it.
        self._led_track = False
        self._led_bytes = 0.0
        self._led_transfers = 0

        self.caches = MetadataCaches(config.mdc, partition_id,
                                     observer=observer, profiler=profiler)
        self.readonly = ReadOnlyDetector(self.scheme.detectors)
        self.streaming = StreamingDetector(self.scheme.detectors)
        self.counters = CounterFile()
        self.common = CommonCounterTable()
        self.layout = mlayout.MetadataLayout()

        # The scheme's policy composition (see repro.core.policies):
        # the counter stack, the MAC discipline and the integrity tree.
        protected = constants.PROTECTED_MEMORY_BYTES
        if self.scheme.local_metadata:
            protected //= config.gpu.num_partitions
        self.counter_policy, self.mac_policy, integrity = build_policies(self)
        self.bmt = integrity.build_walker(protected)

        # Per-scheme knobs resolved once (the per-access path reads
        # these locals instead of chasing scheme attribute chains).
        self._meta_sectors_on_miss = 1 if self.scheme.sectored_counters else 4
        self._is_secure = self.scheme.is_secure
        self._local_metadata = self.scheme.local_metadata
        self._ro_region_size = self.scheme.detectors.readonly_region_size
        self._chunk_size = self.scheme.detectors.stream_chunk_size
        if constants.SECTOR_SIZE % self.scheme.mac_size:
            raise ValueError("mac_size must divide the sector size")
        #: Data blocks covered by one 32 B MAC sector (4 with the 8 B
        #: default, 8 with PSSM's 4 B truncation).
        self._mac_sector_coverage = constants.SECTOR_SIZE // self.scheme.mac_size
        # Hot-path specialisation: when neither the observer nor the
        # host profiler is attached, the metadata helpers probe their
        # MDC hit path inline (see _ctr_access) — the bookkeeping is
        # bit-identical to SectoredCache.access's resident branch, and
        # the instrumented layers only exist to emit events/timings
        # that are off here anyway.
        self._fast_meta = not (self._observe or self.caches._profile)
        self._spb = constants.SECTORS_PER_BLOCK
        self._bs = constants.BLOCK_SIZE
        self._ctr_cov = mlayout.CTR_SECTOR_COVERAGE_BLOCKS
        self._ctr_cache = self.caches.counter
        self._mac_cache = self.caches.mac
        self._ro_opt = self.scheme.readonly_optimization
        # Bound policy entry points (the policies are fixed at
        # construction; binding skips two attribute chases per access).
        self._counter_access = self.counter_policy.access
        self._mac_access = self.mac_policy.access
        # Policy-stack fusion: the plain Split + BlockMAC composition
        # (Naive, PSSM) has no detectors, stats or fall-through layers,
        # so _handle can run both policies' bodies inline — exactly
        # the statements SplitCounterPolicy.access and
        # BlockMACPolicy.access would execute, minus the call frames.
        from repro.core.policies.counter import SplitCounterPolicy
        from repro.core.policies.mac import BlockMACPolicy
        self._fused_split_block = (
            type(self.counter_policy) is SplitCounterPolicy
            and type(self.mac_policy) is BlockMACPolicy
        )
        # Direct-emission fast path (armed by the pipeline via
        # :meth:`attach_direct`): metadata transfers occupy their DRAM
        # channel at emission time instead of materialising
        # DRAMRequest lists for ``MemoryPipeline.schedule``.
        self._direct = False
        self._channels: Optional[list] = None
        self._traffic = None
        self._cycle = 0.0
        self._ctr_done = 0.0
        self._empty_result = MEEResult()

        # Statistics.
        self.readonly_stats = PredictionStats()
        self.streaming_stats = PredictionStats()
        self.shared_counter_reads = 0
        self.common_counter_hits = 0
        self.rechecks = 0
        self.kernel_idx = 0
        self._access_seq = 0

    # ------------------------------------------------------------------------
    # Host-side events (command processor)
    # ------------------------------------------------------------------------

    def on_host_copy(self, local_start: int, local_end: int, at_init: bool,
                     cycle: float = 0.0) -> None:
        """A H2D memory copy touched [local_start, local_end) of this
        partition's local space.  At context init it *marks* the
        regions read-only; mid-run it clears them (Section IV-B)."""
        if not self.scheme.readonly_optimization or local_end <= local_start:
            return
        regions = self._regions_in(local_start, local_end)
        if self._led:
            # Probe aliasing before mutating the bit vector.
            led, pid, kernel = self.led, self.partition_id, self.kernel_idx
            readonly = self.readonly
            if at_init:
                for region in regions:
                    led.ro_mark(cycle, pid, kernel, region,
                                "host_copy_init",
                                readonly.aliased_setter(region))
            else:
                for region in regions:
                    led.ro_clear(cycle, pid, kernel, region, "host_copy",
                                 readonly.aliased_clearer(region))
        if at_init:
            self.readonly.mark_read_only(regions)
        else:
            self.readonly.mark_written(regions)

    def input_read_only_reset(self, local_start: int, local_end: int,
                              cycle: float = 0.0) -> int:
        """The new host API (Fig. 9): re-arm regions as read-only and
        raise the shared counter above every major counter in the
        range, preventing cross-kernel replay.  Returns the new shared
        counter value."""
        if local_end <= local_start:
            raise ValueError("empty reset range")
        regions = self._regions_in(local_start, local_end)
        if self.scheme.readonly_optimization:
            if self._led:
                led, pid = self.led, self.partition_id
                kernel = self.kernel_idx
                readonly = self.readonly
                for region in regions:
                    led.ro_mark(cycle, pid, kernel, region, "reset_api",
                                readonly.aliased_setter(region))
            self.readonly.mark_read_only(regions)
        first_line = local_start // (mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE)
        last_line = (local_end - 1) // (mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE)
        max_major = self.counters.max_major_in_lines(range(first_line, last_line + 1))
        return self.shared_counter.raise_to(max_major)

    def on_kernel_boundary(self, kernel_idx: int, cycle: float = 0.0) -> None:
        self.kernel_idx = kernel_idx
        if self.scheme.oracle_detectors:
            self._oracle_init(kernel_idx, cycle)

    def _oracle_init(self, kernel_idx: int, cycle: float = 0.0) -> None:
        """SHM_upper_bound: seed both predictors from profiling."""
        led = self.led if self._led else None
        for region in self.truth.readonly_regions(self.partition_id, kernel_idx):
            if led is not None:
                led.ro_mark(cycle, self.partition_id, kernel_idx, region,
                            "oracle", self.readonly.aliased_setter(region))
            self.readonly.mark_read_only([region])
        for chunk, pattern in self.truth.first_phase_patterns(self.partition_id).items():
            if led is not None:
                led.stream_preset(cycle, self.partition_id, kernel_idx,
                                  chunk, pattern.value)
            self.streaming.preset(chunk, pattern)

    def _regions_in(self, local_start: int, local_end: int) -> List[int]:
        size = self.scheme.detectors.readonly_region_size
        first = local_start // size
        last = (local_end - 1) // size
        return list(range(first, last + 1))

    # ------------------------------------------------------------------------
    # Main data path
    # ------------------------------------------------------------------------

    def on_read_miss(self, cycle: float, physical: int, local_offset: int) -> MEEResult:
        """An L2 miss fill of one data line (or sector thereof)."""
        return self._handle(cycle, physical, local_offset, is_write=False)

    def on_writeback(self, cycle: float, physical: int, local_offset: int) -> MEEResult:
        """A dirty L2 line written back to DRAM."""
        return self._handle(cycle, physical, local_offset, is_write=True)

    def attach_direct(self, channels: list, traffic) -> None:
        """Arm the direct-emission fast path (pipeline wiring).

        With no observer, no host profiler and no L2 victim cache in
        play, every metadata transfer can occupy its DRAM channel the
        moment a policy emits it — same order, cycle and occupy/service
        arithmetic as :meth:`MemoryPipeline.schedule` consuming the
        equivalent :class:`DRAMRequest` list, so the simulated timing
        and traffic accounting are bit-identical; only the intermediate
        request objects and the scheduler loop disappear.  Callers must
        then use :meth:`on_read_miss_direct` / :meth:`on_writeback_direct`
        whenever ``_direct`` armed.
        """
        self._channels = channels
        self._traffic = traffic
        self._direct = self._fast_meta and not self.scheme.l2_victim_cache

    def detach_direct(self) -> None:
        """Disarm direct emission (hooks attached after construction):
        fall back to materialised :class:`MetaTransfer` /
        :class:`DRAMRequest` streams so every consumer sees them."""
        self._direct = False

    def attach_ledger(self, ledger) -> None:
        """Attach (or detach, with the NULL ledger) a decision ledger
        after construction.  Unlike :meth:`detach_direct`, this leaves
        ``_observe`` / ``_fast_meta`` / ``_direct`` untouched: the
        ledger taps fire at decision granularity and are legal on the
        fused fast paths of both cores."""
        self.led = ledger if ledger is not None else NULL_LEDGER
        self._led = self.led.enabled
        self._led_track = False
        self._led_bytes = 0.0
        self._led_transfers = 0

    def _led_begin(self) -> None:
        """Open a decision cost scope: until :meth:`_led_end`, every
        emission funnel adds its bytes/transfers to the scope.  Scopes
        never nest (each tap site brackets exactly one decision)."""
        self._led_track = True
        self._led_bytes = 0.0
        self._led_transfers = 0

    def _led_end(self) -> tuple:
        """Close the cost scope; returns ``(cost_bytes, cost_transfers)``."""
        self._led_track = False
        return self._led_bytes, self._led_transfers

    def on_read_miss_direct(self, cycle: float, physical: int,
                            local_offset: int) -> float:
        """Direct-mode read miss: metadata transfers go straight to
        the channels; returns the decrypt-critical counter-fetch
        completion cycle (0.0 when the counter was on chip)."""
        self._cycle = cycle
        self._ctr_done = 0.0
        self._handle(cycle, physical, local_offset, is_write=False)
        return self._ctr_done

    def on_writeback_direct(self, cycle: float, physical: int,
                            local_offset: int) -> None:
        """Direct-mode write back (no critical transfer to report, and
        — victim cache off — nothing is ever displaced)."""
        self._cycle = cycle
        self._ctr_done = 0.0
        self._handle(cycle, physical, local_offset, is_write=True)

    def _handle(self, cycle: float, physical: int, local_offset: int, is_write: bool) -> MEEResult:
        # Direct mode emits past the result object (see _emit), so the
        # shared empty singleton serves every access without per-call
        # allocation; its lists are never mutated.
        result = self._empty_result if self._direct else MEEResult()
        if not self._is_secure:
            return result
        self._access_seq += 1
        if self._observe:
            self.caches.now = cycle

        bs = self._bs
        meta_addr = local_offset if self._local_metadata else physical
        block_id = meta_addr // bs
        if self._fused_split_block:
            # SplitCounterPolicy.access + BlockMACPolicy.access,
            # inlined statement for statement (neither reads the
            # region/chunk classification, so it is not computed).
            if is_write:
                if self.counters.record_write(block_id):
                    line = mlayout.counter_line(block_id)
                    if self._led:
                        self._led_begin()
                        self._reencrypt_line(result, line)
                        self.led.ctr_overflow(
                            cycle, self.partition_id, self.kernel_idx,
                            block_id, line, *self._led_end())
                    else:
                        self._reencrypt_line(result, line)
                self._ctr_access(result, block_id, is_write=True,
                                 fetch=True)
            else:
                self._ctr_access(result, block_id, is_write=False,
                                 fetch=True)
            self._blk_mac_access(result, block_id, is_write=is_write)
            return result
        region_id = local_offset // self._ro_region_size
        chunk_id = local_offset // self._chunk_size
        block_offset = (local_offset % self._chunk_size) // bs

        read_only = self._counter_access(
            result, cycle, block_id, region_id, is_write
        )
        self._mac_access(
            result, cycle, block_id, chunk_id, block_offset, region_id,
            read_only, is_write,
        )
        return result

    # ------------------------------------------------------------------------
    # Counter + BMT helpers (called by the counter policies)
    # ------------------------------------------------------------------------

    def _ctr_access(self, result: MEEResult, block_id: int, is_write: bool, fetch: bool) -> None:
        sector_id = block_id // self._ctr_cov
        line_key = sector_id // self._spb
        sector = sector_id % self._spb
        if self._fast_meta:
            # Resident-sector fast path, inlined from SectoredCache.
            # access: a hit emits no transfers, walks no BMT and (with
            # observer/profiler off) has no other side effects.
            cache = self._ctr_cache
            lines = cache._sets[line_key % cache.num_sets]
            line = lines.get(line_key)
            bit = 1 << sector
            if line is not None and line.valid_mask & bit:
                cache.accesses += 1
                cache.hits += 1
                if is_write:
                    line.dirty_mask |= bit
                if next(reversed(lines)) is not line_key:
                    del lines[line_key]
                    lines[line_key] = line
                return
            if self._direct:
                self._meta_miss(cache, KIND_CTR, line_key, sector,
                                is_write, fetch)
                if fetch:
                    leaf = mlayout.bmt_leaf(block_id)
                    t, d = self.bmt.walk(
                        self.caches, leaf, is_write=is_write,
                        sectors_on_miss=self._meta_sectors_on_miss)
                    self._emit(result, t, d)
                return
        transfers, displaced, hit = self.caches.access(
            KIND_CTR, line_key, sector, is_write=is_write,
            fetch_on_miss=fetch, sectors_on_miss=self._meta_sectors_on_miss,
        )
        # Only a *read's* counter fetch blocks decryption; the write
        # path's read-modify-write fetch is off the critical path.
        self._emit(result, transfers, displaced,
                   critical_kind=None if is_write else KIND_CTR)
        if not hit and fetch:
            # Counter came from memory: its BMT path must be verified
            # (read) or will be re-hashed (write).
            leaf = mlayout.bmt_leaf(block_id)
            t, d = self.bmt.walk(self.caches, leaf, is_write=is_write,
                                 sectors_on_miss=self._meta_sectors_on_miss)
            self._emit(result, t, d)

    def _propagate_shared_counter(self, result: MEEResult, region_id: int) -> None:
        """Fig. 8: a write to a read-only region copies the shared
        counter into the region's major counters (in the counter cache,
        no fetch needed — the values are generated on chip) and folds
        the region back under the BMT."""
        region_size = self.scheme.detectors.readonly_region_size
        line_cov = mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE
        first_block = (region_id * region_size) // constants.BLOCK_SIZE
        lines = max(1, region_size // line_cov)
        for i in range(lines):
            line_key = mlayout.counter_line(first_block) + i
            self.counters.set_major(line_key, self.shared_counter.value)
            base_block = line_key * mlayout.CTR_LINE_COVERAGE_BLOCKS
            for sector in range(constants.SECTORS_PER_BLOCK):
                transfers, displaced, _ = self.caches.access(
                    KIND_CTR, line_key, sector, is_write=True, fetch_on_miss=False,
                )
                self._emit(result, transfers, displaced)
            t, d = self.bmt.walk(self.caches, line_key, is_write=True,
                                 sectors_on_miss=self._meta_sectors_on_miss)
            self._emit(result, t, d)

    def _reencrypt_line(self, result: MEEResult, ctr_line: int) -> None:
        """Minor-counter overflow: re-encrypt the line's whole coverage
        (read + write every covered data block)."""
        size = mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE
        self._emit_bulk(result, size, False, "ctr")
        self._emit_bulk(result, size, True, "ctr")

    # -- MAC cache helpers (called by the MAC policies) --------------------------

    def _blk_mac_access(
        self, result: MEEResult, block_id: int, is_write: bool,
        as_mispred: bool = False,
    ) -> None:
        sector_id = block_id // self._mac_sector_coverage
        line_key = sector_id // self._spb
        sector = sector_id % self._spb
        if self._fast_meta and self._mac_hit(line_key, sector, is_write):
            return
        if self._direct and not as_mispred:
            # MAC updates never read the old MAC (the new value is
            # computed from the data): write-allocate without fetch.
            self._meta_miss(self._mac_cache, KIND_MAC, line_key, sector,
                            is_write, not is_write)
            return
        # MAC updates never read the old MAC (the new value is computed
        # from the data): write-allocate without fetch.
        transfers, displaced, _ = self.caches.access(
            KIND_MAC, line_key, sector, is_write=is_write,
            fetch_on_miss=not is_write,
            sectors_on_miss=self._meta_sectors_on_miss,
        )
        self._emit(result, transfers, displaced,
                   mispred="mispred" if as_mispred else None)

    def _chunk_mac_access(
        self, result: MEEResult, chunk_id: int, is_write: bool,
        as_mispred: bool = False,
    ) -> None:
        sector_id = chunk_id // self._mac_sector_coverage
        line_key = mlayout.CHUNK_MAC_KEY_BASE + sector_id // self._spb
        sector = sector_id % self._spb
        if self._fast_meta and self._mac_hit(line_key, sector, is_write):
            return
        if self._direct and not as_mispred:
            self._meta_miss(self._mac_cache, KIND_MAC, line_key, sector,
                            is_write, not is_write)
            return
        transfers, displaced, _ = self.caches.access(
            KIND_MAC, line_key, sector, is_write=is_write,
            fetch_on_miss=not is_write,
            sectors_on_miss=self._meta_sectors_on_miss,
        )
        self._emit(result, transfers, displaced,
                   mispred="mispred" if as_mispred else None)

    def _meta_miss(self, cache, kind: str, line_key: int, sector: int,
                   is_write: bool, fetch: bool) -> None:
        """Direct-mode MDC miss, fused: :meth:`SectoredCache.access`'s
        miss branch, the whole-line fill and the fetch/eviction
        transfers collapse into one pass that occupies the channels
        immediately — statistics, masks, LRU motion, transfer order
        and timing identical to ``caches.access`` + ``_emit`` on the
        same state (victim cache off, so nothing is ever displaced
        and eviction valid-sector counts are never read)."""
        cache.accesses += 1
        lines = cache._sets[line_key % cache.num_sets]
        line = lines.get(line_key)
        bit = 1 << sector
        evict_key = 0
        evict_dirty = 0
        if line is None:
            if len(lines) >= cache.ways:
                victim_key = next(iter(lines))  # LRU = oldest insertion
                victim = lines.pop(victim_key)
                evict_dirty = _popcount(victim.dirty_mask)
                if evict_dirty:
                    cache.writebacks += evict_dirty
                evict_key = victim_key
            line = _Line(line_key)
            lines[line_key] = line
        if fetch:
            cache.sector_fills += 1
        line.valid_mask |= bit
        if is_write:
            line.dirty_mask |= bit
        if next(reversed(lines)) is not line_key:
            del lines[line_key]
            lines[line_key] = line
        sector_size = constants.SECTOR_SIZE
        if fetch:
            # Demand fetch first, displaced dirty line second — the
            # order the object path appends its transfers.
            size = sector_size
            som = self._meta_sectors_on_miss
            if som > 1:
                size += (som - 1) * sector_size
                # SectoredCache.fill_all_sectors, inlined: the line is
                # resident and already MRU (the demand access above
                # just touched it), so only masks and stats move.
                full = cache._full_mask
                present = _popcount(line.valid_mask & full)
                spb = cache.sectors_per_block
                cache.accesses += spb
                cache.hits += present
                cache.sector_fills += spb - present
                line.valid_mask |= full
            self._occupy_meta(kind, line_key, size, False,
                              kind is KIND_CTR and not is_write)
        if evict_dirty:
            self._occupy_meta(kind, evict_key, evict_dirty * sector_size,
                              True, False)

    def _occupy_meta(self, kind: str, line_key: int, size: int,
                     is_write: bool, critical: bool) -> None:
        """Route one fused metadata transfer to its DRAM channel (the
        single-transfer core of :meth:`_emit_direct`)."""
        if self._led_track:
            self._led_bytes += size
            self._led_transfers += 1
        traffic = self._traffic
        if kind is KIND_CTR:
            addr = self.layout.counter_address(line_key)
            traffic.counter_bytes += size
        elif kind is KIND_MAC:
            addr = self.layout.mac_address(line_key)
            traffic.mac_bytes += size
        else:
            addr = self.layout.bmt_address(line_key)
            traffic.bmt_bytes += size
        partition = (self.partition_id if self._local_metadata
                     else self.mapper.partition_of(addr))
        channel = self._channels[partition]
        if channel.fifo_fast:
            # DRAMChannel.occupy, inlined (direct mode implies the
            # observer is detached, so no event can be owed).
            cycle = self._cycle
            start = channel._next_free
            if cycle > start:
                start = cycle
            occupancy = (channel.request_overhead
                         + size / channel.bytes_per_cycle)
            if is_write != channel._last_was_write:
                occupancy += channel.turnaround
                channel._last_was_write = is_write
            next_free = start + occupancy
            channel._next_free = next_free
            stats = channel.stats
            stats.requests += 1
            stats.busy_cycles += occupancy
            if is_write:
                stats.write_bytes += size
            else:
                stats.read_bytes += size
            done = next_free + channel.latency
        else:
            done = channel.service(self._cycle, size, is_write, address=addr,
                                   kind=kind, critical=critical)
        if critical and done > self._ctr_done:
            self._ctr_done = done

    def _mac_hit(self, line_key: int, sector: int, is_write: bool) -> bool:
        """Resident-sector fast path on the MAC cache (see
        _ctr_access); True when the access was a hit and is done."""
        cache = self._mac_cache
        lines = cache._sets[line_key % cache.num_sets]
        line = lines.get(line_key)
        bit = 1 << sector
        if line is None or not line.valid_mask & bit:
            return False
        cache.accesses += 1
        cache.hits += 1
        if is_write:
            line.dirty_mask |= bit
        if next(reversed(lines)) is not line_key:
            del lines[line_key]
            lines[line_key] = line
        return True

    # ------------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------------

    def _emit(
        self,
        result: MEEResult,
        transfers: "Sequence[MetaTransfer]",
        displaced: "Sequence[DisplacedData]",
        critical_kind: Optional[str] = None,
        mispred: Optional[str] = None,
    ) -> None:
        if not transfers and not displaced:
            return
        if self._direct:
            # Victim cache off in direct mode: nothing is displaced.
            if transfers:
                self._emit_direct(transfers, critical_kind, mispred)
            return
        track = self._led_track
        for t in transfers:
            kind = mispred or t.kind
            critical = (
                critical_kind is not None
                and t.kind == critical_kind
                and not t.is_write
            )
            if track:
                self._led_bytes += t.size
                self._led_transfers += 1
            partition, address = self._route(t)
            result.requests.append(
                DRAMRequest(partition, t.size, t.is_write, kind, critical,
                            address=address)
            )
        result.displaced_data.extend(displaced)

    def _emit_bulk(self, result: MEEResult, size: int, is_write: bool,
                   kind: str) -> None:
        """Append one address-less bulk transfer on this partition's
        channel (re-encryptions, misprediction data re-fetches)."""
        if self._led_track:
            self._led_bytes += size
            self._led_transfers += 1
        if self._direct:
            channel = self._channels[self.partition_id]
            if channel.fifo_fast:
                channel.occupy(self._cycle, size, is_write)
            else:
                channel.service(self._cycle, size, is_write, address=-1,
                                kind=kind, critical=False)
            self._book_traffic(kind, size)
            return
        result.requests.append(
            DRAMRequest(self.partition_id, size, is_write, kind)
        )

    def _emit_direct(
        self,
        transfers: "Sequence[MetaTransfer]",
        critical_kind: Optional[str],
        mispred: Optional[str],
    ) -> None:
        """Direct mode: occupy each transfer's channel now — the same
        order, cycle and per-request arithmetic as
        :meth:`MemoryPipeline.schedule` consuming the equivalent
        request list, folded into one pass."""
        cycle = self._cycle
        channels = self._channels
        traffic = self._traffic
        layout = self.layout
        local = self._local_metadata
        pid = self.partition_id
        ctr_done = self._ctr_done
        track = self._led_track
        for t in transfers:
            tkind = t.kind
            if track:
                self._led_bytes += t.size
                self._led_transfers += 1
            if tkind == KIND_CTR:
                addr = layout.counter_address(t.line_key)
            elif tkind == KIND_MAC:
                addr = layout.mac_address(t.line_key)
            else:
                addr = layout.bmt_address(t.line_key)
            partition = pid if local else self.mapper.partition_of(addr)
            size = t.size
            is_write = t.is_write
            critical = (critical_kind is not None and tkind == critical_kind
                        and not is_write)
            kind = mispred or tkind
            channel = channels[partition]
            if channel.fifo_fast:
                done = channel.occupy(cycle, size, is_write)
            else:
                done = channel.service(cycle, size, is_write, address=addr,
                                       kind=kind, critical=critical)
            if kind == "ctr":
                traffic.counter_bytes += size
            elif kind == "mac":
                traffic.mac_bytes += size
            elif kind == "bmt":
                traffic.bmt_bytes += size
            else:
                self._book_traffic(kind, size)
            if critical and done > ctr_done:
                ctr_done = done
        self._ctr_done = ctr_done

    def _book_traffic(self, kind: str, size: int) -> None:
        """Traffic-counter dispatch for the uncommon kinds (the direct
        emitters inline ctr/mac/bmt; this mirrors
        ``MemoryPipeline.schedule``'s dispatch, registry fallback
        included)."""
        traffic = self._traffic
        if kind == "ctr":
            traffic.counter_bytes += size
        elif kind == "mac":
            traffic.mac_bytes += size
        elif kind == "bmt":
            traffic.bmt_bytes += size
        elif kind == "mispred":
            traffic.misprediction_bytes += size
        elif kind == "data":
            traffic.data_bytes += size
        else:
            from repro.sim.pipeline import TRAFFIC_KIND_COUNTERS
            counter_attr = TRAFFIC_KIND_COUNTERS.get(kind)
            if counter_attr is None:
                raise ValueError(
                    f"unregistered DRAM request kind {kind!r}; declare "
                    "it with repro.sim.pipeline.register_traffic_kind()"
                )
            setattr(traffic, counter_attr,
                    getattr(traffic, counter_attr) + size)

    def _route(self, transfer: MetaTransfer) -> tuple:
        """Which DRAM channel carries this metadata transfer, and at
        which carve-out address?

        Local metadata lives in its own partition's share; physically
        addressed metadata lives wherever the carve-out address maps.
        The address feeds address-aware DRAM schedulers either way.
        """
        if transfer.kind == KIND_CTR:
            addr = self.layout.counter_address(transfer.line_key)
        elif transfer.kind == KIND_MAC:
            addr = self.layout.mac_address(transfer.line_key)
        else:
            addr = self.layout.bmt_address(transfer.line_key)
        if self.scheme.local_metadata:
            return self.partition_id, addr
        return self.mapper.partition_of(addr), addr

    def _meta_partition(self, addr: int) -> int:
        if self.scheme.local_metadata:
            return self.partition_id
        return self.mapper.partition_of(addr)

    def flush(self) -> List[DRAMRequest]:
        """Context teardown: push all dirty metadata to DRAM."""
        requests = []
        for t in self.caches.flush():
            partition, address = self._route(t)
            requests.append(
                DRAMRequest(partition, t.size, True, t.kind, address=address)
            )
        return requests

    def flush_direct(self, cycle: float) -> float:
        """Direct-mode context teardown: dirty metadata drains straight
        to the channels — same kind/line order, occupy arithmetic and
        traffic accounting as :meth:`flush` fed through
        :meth:`MemoryPipeline.schedule`.  Returns the last completion
        cycle (0.0 when nothing was dirty)."""
        last = 0.0
        channels = self._channels
        traffic = self._traffic
        layout = self.layout
        local = self._local_metadata
        pid = self.partition_id
        sector_size = constants.SECTOR_SIZE
        for kind, cache in ((KIND_CTR, self.caches.counter),
                            (KIND_MAC, self.caches.mac),
                            (KIND_BMT, self.caches.bmt)):
            for ev in cache.flush():
                size = ev.dirty_sectors * sector_size
                if kind is KIND_CTR:
                    addr = layout.counter_address(ev.key)
                    traffic.counter_bytes += size
                elif kind is KIND_MAC:
                    addr = layout.mac_address(ev.key)
                    traffic.mac_bytes += size
                else:
                    addr = layout.bmt_address(ev.key)
                    traffic.bmt_bytes += size
                partition = pid if local else self.mapper.partition_of(addr)
                channel = channels[partition]
                if channel.fifo_fast:
                    done = channel.occupy(cycle, size, True)
                else:
                    done = channel.service(cycle, size, True, address=addr,
                                           kind=kind, critical=False)
                if done > last:
                    last = done
        return last

    # ------------------------------------------------------------------------
    # Prediction-accuracy accounting (Figs. 10 and 11)
    # ------------------------------------------------------------------------

    def _record_readonly_stat(self, region_id: int, predicted: bool) -> None:
        truth = self.truth.readonly_truth(self.partition_id, self.kernel_idx, region_id)
        if truth is None:
            return
        category = self.readonly.attribute(region_id, predicted, truth)
        self._bump(self.readonly_stats, category)

    def _record_streaming_stat(
        self, chunk_id: int, predicted: Pattern, region_id: int
    ) -> None:
        truth = self.truth.stream_truth(self.partition_id, chunk_id, self._access_seq)
        if truth is None:
            return
        read_only = self._ro_opt and self.readonly.predict(region_id)
        category = self.streaming.attribute(chunk_id, predicted, truth, read_only)
        self._bump(self.streaming_stats, category)

    @staticmethod
    def _bump(stats: PredictionStats, category: str) -> None:
        if category == "correct":
            stats.correct += 1
        elif category == "mp_init":
            stats.mp_init += 1
        elif category == "mp_aliasing":
            stats.mp_aliasing += 1
        else:
            setattr(stats, category, getattr(stats, category) + 1)
