"""The Memory Encryption Engine (Section IV-A, Fig. 6).

One MEE sits in each memory controller.  Every L2 miss and every L2
write back flows through it; the MEE decides — per the active scheme —
which security metadata must move between the metadata caches and
DRAM:

* encryption counters (skipped for read-only regions via the shared
  counter, and for common-counter lines);
* MACs at block or chunk granularity (the dual-granularity design,
  driven by the streaming detector, with the misprediction handling of
  Tables III and IV);
* BMT nodes (skipped entirely for read-only regions — Fig. 4).

The MEE is a *traffic* model: it returns the DRAM requests an access
causes.  The functional encrypt/verify path lives in
:mod:`repro.core.functional`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common import constants
from repro.common.address import AddressMapper
from repro.common.config import SimConfig
from repro.common.types import Pattern, PredictionStats
from repro.core.policies import build_policies
from repro.core.readonly import ReadOnlyDetector
from repro.core.streaming import StreamingDetector
from repro.metadata import layout as mlayout
from repro.metadata.caches import (
    KIND_CTR,
    KIND_MAC,
    DisplacedData,
    MetadataCaches,
    MetaTransfer,
)
from repro.metadata.counters import CommonCounterTable, CounterFile, SharedCounter
from repro.obs.observer import NULL_OBSERVER


class DRAMRequest:
    """One DRAM transfer the simulator must schedule.

    A ``__slots__`` class rather than a dataclass: several instances
    are created per secure L2 miss, so instance-dict allocation is
    measurable hot-path overhead.

    ``critical`` is True when decryption of the demand data waits on
    this transfer (a counter fetch); MAC and BMT transfers are off the
    critical path — data is forwarded to the cores before
    verification.  ``address`` is the metadata carve-out address of
    the transfer (-1 when the request has no single address, e.g. a
    bulk re-encryption); only address-aware DRAM schedulers (the
    banked row-buffer model) consume it.
    """

    __slots__ = ("partition", "size", "is_write", "kind", "critical",
                 "address")

    def __init__(self, partition: int, size: int, is_write: bool,
                 kind: str,  # data / ctr / mac / bmt / mispred
                 critical: bool = False, address: int = -1) -> None:
        self.partition = partition
        self.size = size
        self.is_write = is_write
        self.kind = kind
        self.critical = critical
        self.address = address

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DRAMRequest(partition={self.partition}, size={self.size}, "
            f"is_write={self.is_write}, kind={self.kind!r}, "
            f"critical={self.critical}, address={self.address})"
        )


class MEEResult:
    """Everything one data access caused.

    ``displaced_data`` holds dirty data lines displaced from the L2 by
    victim insertions; the simulator must run them through the write
    path.  A ``__slots__`` class: one instance is created per L2 miss
    and per write-back.
    """

    __slots__ = ("requests", "displaced_data")

    def __init__(self, requests: Optional[List[DRAMRequest]] = None,
                 displaced_data: Optional[List[DisplacedData]] = None) -> None:
        self.requests: List[DRAMRequest] = (
            [] if requests is None else requests
        )
        self.displaced_data: List[DisplacedData] = (
            [] if displaced_data is None else displaced_data
        )


class TruthProvider:
    """Oracle ground truth from the profiling pass (see
    :mod:`repro.sim.profiling`).  The default implementation knows
    nothing and disables prediction-accuracy accounting."""

    def readonly_truth(self, partition: int, kernel: int, region: int) -> Optional[bool]:
        return None

    def stream_truth(self, partition: int, chunk: int, seq: int) -> Optional[Pattern]:
        return None

    def first_phase_patterns(self, partition: int) -> Dict[int, Pattern]:
        return {}

    def readonly_regions(self, partition: int, kernel: int) -> List[int]:
        return []


class MemoryEncryptionEngine:
    """One partition's MEE plus its detectors and metadata caches."""

    def __init__(
        self,
        partition_id: int,
        config: SimConfig,
        mapper: AddressMapper,
        shared_counter: SharedCounter,
        truth: Optional[TruthProvider] = None,
        observer=None,
        profiler=None,
    ) -> None:
        self.partition_id = partition_id
        self.config = config
        self.scheme = config.scheme
        self.mapper = mapper
        self.shared_counter = shared_counter
        self.truth = truth or TruthProvider()
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._observe = self.obs.enabled

        self.caches = MetadataCaches(config.mdc, partition_id,
                                     observer=observer, profiler=profiler)
        self.readonly = ReadOnlyDetector(self.scheme.detectors)
        self.streaming = StreamingDetector(self.scheme.detectors)
        self.counters = CounterFile()
        self.common = CommonCounterTable()
        self.layout = mlayout.MetadataLayout()

        # The scheme's policy composition (see repro.core.policies):
        # the counter stack, the MAC discipline and the integrity tree.
        protected = constants.PROTECTED_MEMORY_BYTES
        if self.scheme.local_metadata:
            protected //= config.gpu.num_partitions
        self.counter_policy, self.mac_policy, integrity = build_policies(self)
        self.bmt = integrity.build_walker(protected)

        # Per-scheme knobs resolved once (the per-access path reads
        # these locals instead of chasing scheme attribute chains).
        self._meta_sectors_on_miss = 1 if self.scheme.sectored_counters else 4
        self._is_secure = self.scheme.is_secure
        self._local_metadata = self.scheme.local_metadata
        self._ro_region_size = self.scheme.detectors.readonly_region_size
        self._chunk_size = self.scheme.detectors.stream_chunk_size
        if constants.SECTOR_SIZE % self.scheme.mac_size:
            raise ValueError("mac_size must divide the sector size")
        #: Data blocks covered by one 32 B MAC sector (4 with the 8 B
        #: default, 8 with PSSM's 4 B truncation).
        self._mac_sector_coverage = constants.SECTOR_SIZE // self.scheme.mac_size

        # Statistics.
        self.readonly_stats = PredictionStats()
        self.streaming_stats = PredictionStats()
        self.shared_counter_reads = 0
        self.common_counter_hits = 0
        self.rechecks = 0
        self.kernel_idx = 0
        self._access_seq = 0

    # ------------------------------------------------------------------------
    # Host-side events (command processor)
    # ------------------------------------------------------------------------

    def on_host_copy(self, local_start: int, local_end: int, at_init: bool) -> None:
        """A H2D memory copy touched [local_start, local_end) of this
        partition's local space.  At context init it *marks* the
        regions read-only; mid-run it clears them (Section IV-B)."""
        if not self.scheme.readonly_optimization or local_end <= local_start:
            return
        regions = self._regions_in(local_start, local_end)
        if at_init:
            self.readonly.mark_read_only(regions)
        else:
            self.readonly.mark_written(regions)

    def input_read_only_reset(self, local_start: int, local_end: int) -> int:
        """The new host API (Fig. 9): re-arm regions as read-only and
        raise the shared counter above every major counter in the
        range, preventing cross-kernel replay.  Returns the new shared
        counter value."""
        if local_end <= local_start:
            raise ValueError("empty reset range")
        regions = self._regions_in(local_start, local_end)
        if self.scheme.readonly_optimization:
            self.readonly.mark_read_only(regions)
        first_line = local_start // (mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE)
        last_line = (local_end - 1) // (mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE)
        max_major = self.counters.max_major_in_lines(range(first_line, last_line + 1))
        return self.shared_counter.raise_to(max_major)

    def on_kernel_boundary(self, kernel_idx: int) -> None:
        self.kernel_idx = kernel_idx
        if self.scheme.oracle_detectors:
            self._oracle_init(kernel_idx)

    def _oracle_init(self, kernel_idx: int) -> None:
        """SHM_upper_bound: seed both predictors from profiling."""
        for region in self.truth.readonly_regions(self.partition_id, kernel_idx):
            self.readonly.mark_read_only([region])
        for chunk, pattern in self.truth.first_phase_patterns(self.partition_id).items():
            self.streaming.preset(chunk, pattern)

    def _regions_in(self, local_start: int, local_end: int) -> List[int]:
        size = self.scheme.detectors.readonly_region_size
        first = local_start // size
        last = (local_end - 1) // size
        return list(range(first, last + 1))

    # ------------------------------------------------------------------------
    # Main data path
    # ------------------------------------------------------------------------

    def on_read_miss(self, cycle: float, physical: int, local_offset: int) -> MEEResult:
        """An L2 miss fill of one data line (or sector thereof)."""
        return self._handle(cycle, physical, local_offset, is_write=False)

    def on_writeback(self, cycle: float, physical: int, local_offset: int) -> MEEResult:
        """A dirty L2 line written back to DRAM."""
        return self._handle(cycle, physical, local_offset, is_write=True)

    def _handle(self, cycle: float, physical: int, local_offset: int, is_write: bool) -> MEEResult:
        result = MEEResult()
        if not self._is_secure:
            return result
        self._access_seq += 1
        if self._observe:
            self.caches.now = cycle

        meta_addr = local_offset if self._local_metadata else physical
        block_id = meta_addr // constants.BLOCK_SIZE
        region_id = local_offset // self._ro_region_size
        chunk_id = local_offset // self._chunk_size
        block_offset = (
            local_offset % self._chunk_size
        ) // constants.BLOCK_SIZE

        read_only = self.counter_policy.access(
            result, cycle, block_id, region_id, is_write
        )
        self.mac_policy.access(
            result, cycle, block_id, chunk_id, block_offset, region_id,
            read_only, is_write,
        )
        return result

    # ------------------------------------------------------------------------
    # Counter + BMT helpers (called by the counter policies)
    # ------------------------------------------------------------------------

    def _ctr_access(self, result: MEEResult, block_id: int, is_write: bool, fetch: bool) -> None:
        ref = mlayout.counter_sector(block_id)
        transfers, displaced, hit = self.caches.access(
            KIND_CTR, ref.line_key, ref.sector, is_write=is_write,
            fetch_on_miss=fetch, sectors_on_miss=self._meta_sectors_on_miss,
        )
        # Only a *read's* counter fetch blocks decryption; the write
        # path's read-modify-write fetch is off the critical path.
        self._emit(result, transfers, displaced,
                   critical_kind=None if is_write else KIND_CTR)
        if not hit and fetch:
            # Counter came from memory: its BMT path must be verified
            # (read) or will be re-hashed (write).
            leaf = mlayout.bmt_leaf(block_id)
            t, d = self.bmt.walk(self.caches, leaf, is_write=is_write,
                                 sectors_on_miss=self._meta_sectors_on_miss)
            self._emit(result, t, d)

    def _propagate_shared_counter(self, result: MEEResult, region_id: int) -> None:
        """Fig. 8: a write to a read-only region copies the shared
        counter into the region's major counters (in the counter cache,
        no fetch needed — the values are generated on chip) and folds
        the region back under the BMT."""
        region_size = self.scheme.detectors.readonly_region_size
        line_cov = mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE
        first_block = (region_id * region_size) // constants.BLOCK_SIZE
        lines = max(1, region_size // line_cov)
        for i in range(lines):
            line_key = mlayout.counter_line(first_block) + i
            self.counters.set_major(line_key, self.shared_counter.value)
            base_block = line_key * mlayout.CTR_LINE_COVERAGE_BLOCKS
            for sector in range(constants.SECTORS_PER_BLOCK):
                transfers, displaced, _ = self.caches.access(
                    KIND_CTR, line_key, sector, is_write=True, fetch_on_miss=False,
                )
                self._emit(result, transfers, displaced)
            t, d = self.bmt.walk(self.caches, line_key, is_write=True,
                                 sectors_on_miss=self._meta_sectors_on_miss)
            self._emit(result, t, d)

    def _reencrypt_line(self, result: MEEResult, ctr_line: int) -> None:
        """Minor-counter overflow: re-encrypt the line's whole coverage
        (read + write every covered data block)."""
        size = mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE
        self._emit_bulk(result, size, False, "ctr")
        self._emit_bulk(result, size, True, "ctr")

    # -- MAC cache helpers (called by the MAC policies) --------------------------

    def _blk_mac_access(
        self, result: MEEResult, block_id: int, is_write: bool,
        as_mispred: bool = False,
    ) -> None:
        ref = mlayout.mac_sector(block_id, self.scheme.mac_size)
        # MAC updates never read the old MAC (the new value is computed
        # from the data): write-allocate without fetch.
        transfers, displaced, _ = self.caches.access(
            KIND_MAC, ref.line_key, ref.sector, is_write=is_write,
            fetch_on_miss=not is_write,
            sectors_on_miss=self._meta_sectors_on_miss,
        )
        self._emit(result, transfers, displaced,
                   mispred="mispred" if as_mispred else None)

    def _chunk_mac_access(
        self, result: MEEResult, chunk_id: int, is_write: bool,
        as_mispred: bool = False,
    ) -> None:
        ref = mlayout.chunk_mac_sector(chunk_id, self.scheme.mac_size)
        transfers, displaced, _ = self.caches.access(
            KIND_MAC, ref.line_key, ref.sector, is_write=is_write,
            fetch_on_miss=not is_write,
            sectors_on_miss=self._meta_sectors_on_miss,
        )
        self._emit(result, transfers, displaced,
                   mispred="mispred" if as_mispred else None)

    # ------------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------------

    def _emit(
        self,
        result: MEEResult,
        transfers: "Sequence[MetaTransfer]",
        displaced: "Sequence[DisplacedData]",
        critical_kind: Optional[str] = None,
        mispred: Optional[str] = None,
    ) -> None:
        if not transfers and not displaced:
            return
        for t in transfers:
            kind = mispred or t.kind
            critical = (
                critical_kind is not None
                and t.kind == critical_kind
                and not t.is_write
            )
            partition, address = self._route(t)
            result.requests.append(
                DRAMRequest(partition, t.size, t.is_write, kind, critical,
                            address=address)
            )
        result.displaced_data.extend(displaced)

    def _emit_bulk(self, result: MEEResult, size: int, is_write: bool,
                   kind: str) -> None:
        """Append one address-less bulk transfer on this partition's
        channel (re-encryptions, misprediction data re-fetches)."""
        result.requests.append(
            DRAMRequest(self.partition_id, size, is_write, kind)
        )

    def _route(self, transfer: MetaTransfer) -> tuple:
        """Which DRAM channel carries this metadata transfer, and at
        which carve-out address?

        Local metadata lives in its own partition's share; physically
        addressed metadata lives wherever the carve-out address maps.
        The address feeds address-aware DRAM schedulers either way.
        """
        if transfer.kind == KIND_CTR:
            addr = self.layout.counter_address(transfer.line_key)
        elif transfer.kind == KIND_MAC:
            addr = self.layout.mac_address(transfer.line_key)
        else:
            addr = self.layout.bmt_address(transfer.line_key)
        if self.scheme.local_metadata:
            return self.partition_id, addr
        return self.mapper.partition_of(addr), addr

    def _meta_partition(self, addr: int) -> int:
        if self.scheme.local_metadata:
            return self.partition_id
        return self.mapper.partition_of(addr)

    def flush(self) -> List[DRAMRequest]:
        """Context teardown: push all dirty metadata to DRAM."""
        requests = []
        for t in self.caches.flush():
            partition, address = self._route(t)
            requests.append(
                DRAMRequest(partition, t.size, True, t.kind, address=address)
            )
        return requests

    # ------------------------------------------------------------------------
    # Prediction-accuracy accounting (Figs. 10 and 11)
    # ------------------------------------------------------------------------

    def _record_readonly_stat(self, region_id: int, predicted: bool) -> None:
        truth = self.truth.readonly_truth(self.partition_id, self.kernel_idx, region_id)
        if truth is None:
            return
        category = self.readonly.attribute(region_id, predicted, truth)
        self._bump(self.readonly_stats, category)

    def _record_streaming_stat(
        self, chunk_id: int, predicted: Pattern, region_id: int
    ) -> None:
        truth = self.truth.stream_truth(self.partition_id, chunk_id, self._access_seq)
        if truth is None:
            return
        read_only = (
            self.scheme.readonly_optimization and self.readonly.predict(region_id)
        )
        category = self.streaming.attribute(chunk_id, predicted, truth, read_only)
        self._bump(self.streaming_stats, category)

    @staticmethod
    def _bump(stats: PredictionStats, category: str) -> None:
        setattr(stats, category, getattr(stats, category) + 1)
