"""The Memory Encryption Engine (Section IV-A, Fig. 6).

One MEE sits in each memory controller.  Every L2 miss and every L2
write back flows through it; the MEE decides — per the active scheme —
which security metadata must move between the metadata caches and
DRAM:

* encryption counters (skipped for read-only regions via the shared
  counter, and for common-counter lines);
* MACs at block or chunk granularity (the dual-granularity design,
  driven by the streaming detector, with the misprediction handling of
  Tables III and IV);
* BMT nodes (skipped entirely for read-only regions — Fig. 4).

The MEE is a *traffic* model: it returns the DRAM requests an access
causes.  The functional encrypt/verify path lives in
:mod:`repro.core.functional`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import constants
from repro.common.address import AddressMapper
from repro.common.config import SimConfig
from repro.common.types import Pattern, PredictionStats
from repro.core.readonly import ReadOnlyDetector
from repro.core.streaming import StreamingDetector, Verdict
from repro.metadata import layout as mlayout
from repro.metadata.bmt import BMTWalker
from repro.metadata.caches import (
    KIND_CTR,
    KIND_MAC,
    DisplacedData,
    MetadataCaches,
    MetaTransfer,
)
from repro.metadata.counters import CommonCounterTable, CounterFile, SharedCounter
from repro.obs.observer import NULL_OBSERVER


@dataclass
class DRAMRequest:
    """One DRAM transfer the simulator must schedule."""

    partition: int
    size: int
    is_write: bool
    kind: str  # data / ctr / mac / bmt / mispred
    #: True when decryption of the demand data waits on this transfer
    #: (a counter fetch).  MAC and BMT transfers are off the critical
    #: path: data is forwarded to the cores before verification.
    critical: bool = False


@dataclass
class MEEResult:
    """Everything one data access caused."""

    requests: List[DRAMRequest] = field(default_factory=list)
    #: Dirty data lines displaced from the L2 by victim insertions;
    #: the simulator must run them through the write path.
    displaced_data: List[DisplacedData] = field(default_factory=list)


class TruthProvider:
    """Oracle ground truth from the profiling pass (see
    :mod:`repro.sim.profiling`).  The default implementation knows
    nothing and disables prediction-accuracy accounting."""

    def readonly_truth(self, partition: int, kernel: int, region: int) -> Optional[bool]:
        return None

    def stream_truth(self, partition: int, chunk: int, seq: int) -> Optional[Pattern]:
        return None

    def first_phase_patterns(self, partition: int) -> Dict[int, Pattern]:
        return {}

    def readonly_regions(self, partition: int, kernel: int) -> List[int]:
        return []


class MemoryEncryptionEngine:
    """One partition's MEE plus its detectors and metadata caches."""

    def __init__(
        self,
        partition_id: int,
        config: SimConfig,
        mapper: AddressMapper,
        shared_counter: SharedCounter,
        truth: Optional[TruthProvider] = None,
        observer=None,
    ) -> None:
        self.partition_id = partition_id
        self.config = config
        self.scheme = config.scheme
        self.mapper = mapper
        self.shared_counter = shared_counter
        self.truth = truth or TruthProvider()
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._observe = self.obs.enabled

        self.caches = MetadataCaches(config.mdc, partition_id,
                                     observer=observer)
        self.readonly = ReadOnlyDetector(self.scheme.detectors)
        self.streaming = StreamingDetector(self.scheme.detectors)
        self.counters = CounterFile()
        self.common = CommonCounterTable()
        self.layout = mlayout.MetadataLayout()

        protected = constants.PROTECTED_MEMORY_BYTES
        if self.scheme.local_metadata:
            protected //= config.gpu.num_partitions
        if self.scheme.integrity_tree == "bmt":
            self.bmt = BMTWalker(protected)
        elif self.scheme.integrity_tree == "counter_tree":
            from repro.crypto.counter_tree import CTREE_ARITY
            self.bmt = BMTWalker(protected, arity=CTREE_ARITY, eager_writes=True)
        else:
            raise ValueError(
                f"unknown integrity tree: {self.scheme.integrity_tree!r}"
            )

        #: Is each chunk's coarse MAC consistent with its blocks?
        #: (Consistent by default: context init computes both
        #: granularities.)
        self._chunk_mac_stale: Dict[int, bool] = {}
        #: Are a chunk's DRAM block MACs behind its data?  (Set when a
        #: STREAM verdict absorbs dirty block MACs into the chunk MAC.)
        self._blk_macs_stale: Dict[int, bool] = {}

        # Per-scheme knobs resolved once.
        self._meta_sectors_on_miss = 1 if self.scheme.sectored_counters else 4
        if constants.SECTOR_SIZE % self.scheme.mac_size:
            raise ValueError("mac_size must divide the sector size")
        #: Data blocks covered by one 32 B MAC sector (4 with the 8 B
        #: default, 8 with PSSM's 4 B truncation).
        self._mac_sector_coverage = constants.SECTOR_SIZE // self.scheme.mac_size

        # Statistics.
        self.readonly_stats = PredictionStats()
        self.streaming_stats = PredictionStats()
        self.shared_counter_reads = 0
        self.common_counter_hits = 0
        self.rechecks = 0
        self.kernel_idx = 0
        self._access_seq = 0

    # ------------------------------------------------------------------------
    # Host-side events (command processor)
    # ------------------------------------------------------------------------

    def on_host_copy(self, local_start: int, local_end: int, at_init: bool) -> None:
        """A H2D memory copy touched [local_start, local_end) of this
        partition's local space.  At context init it *marks* the
        regions read-only; mid-run it clears them (Section IV-B)."""
        if not self.scheme.readonly_optimization or local_end <= local_start:
            return
        regions = self._regions_in(local_start, local_end)
        if at_init:
            self.readonly.mark_read_only(regions)
        else:
            self.readonly.mark_written(regions)

    def input_read_only_reset(self, local_start: int, local_end: int) -> int:
        """The new host API (Fig. 9): re-arm regions as read-only and
        raise the shared counter above every major counter in the
        range, preventing cross-kernel replay.  Returns the new shared
        counter value."""
        if local_end <= local_start:
            raise ValueError("empty reset range")
        regions = self._regions_in(local_start, local_end)
        if self.scheme.readonly_optimization:
            self.readonly.mark_read_only(regions)
        first_line = local_start // (mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE)
        last_line = (local_end - 1) // (mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE)
        max_major = self.counters.max_major_in_lines(range(first_line, last_line + 1))
        return self.shared_counter.raise_to(max_major)

    def on_kernel_boundary(self, kernel_idx: int) -> None:
        self.kernel_idx = kernel_idx
        if self.scheme.oracle_detectors:
            self._oracle_init(kernel_idx)

    def _oracle_init(self, kernel_idx: int) -> None:
        """SHM_upper_bound: seed both predictors from profiling."""
        for region in self.truth.readonly_regions(self.partition_id, kernel_idx):
            self.readonly.mark_read_only([region])
        for chunk, pattern in self.truth.first_phase_patterns(self.partition_id).items():
            self.streaming.preset(chunk, pattern)

    def _regions_in(self, local_start: int, local_end: int) -> List[int]:
        size = self.scheme.detectors.readonly_region_size
        first = local_start // size
        last = (local_end - 1) // size
        return list(range(first, last + 1))

    # ------------------------------------------------------------------------
    # Main data path
    # ------------------------------------------------------------------------

    def on_read_miss(self, cycle: float, physical: int, local_offset: int) -> MEEResult:
        """An L2 miss fill of one data line (or sector thereof)."""
        return self._handle(cycle, physical, local_offset, is_write=False)

    def on_writeback(self, cycle: float, physical: int, local_offset: int) -> MEEResult:
        """A dirty L2 line written back to DRAM."""
        return self._handle(cycle, physical, local_offset, is_write=True)

    def _handle(self, cycle: float, physical: int, local_offset: int, is_write: bool) -> MEEResult:
        result = MEEResult()
        if not self.scheme.is_secure:
            return result
        self._access_seq += 1
        if self._observe:
            self.caches.now = cycle

        meta_addr = local_offset if self.scheme.local_metadata else physical
        block_id = meta_addr // constants.BLOCK_SIZE
        region_id = local_offset // self.scheme.detectors.readonly_region_size
        chunk_id = local_offset // self.scheme.detectors.stream_chunk_size
        block_offset = (
            local_offset % self.scheme.detectors.stream_chunk_size
        ) // constants.BLOCK_SIZE

        read_only = self._counter_path(result, cycle, block_id, region_id, is_write)
        self._mac_path(result, cycle, block_id, chunk_id, block_offset, region_id,
                       read_only, is_write)
        return result

    # ------------------------------------------------------------------------
    # Counter + BMT path
    # ------------------------------------------------------------------------

    def _counter_path(
        self, result: MEEResult, cycle: float, block_id: int, region_id: int,
        is_write: bool,
    ) -> bool:
        """Handle the encryption-counter (and BMT) traffic of one
        access.  Returns whether the access was treated as read-only
        (the MAC path needs this for Tables III/IV)."""
        scheme = self.scheme
        ctr_line = mlayout.counter_line(block_id)

        read_only = False
        if scheme.readonly_optimization:
            predicted_ro = self.readonly.predict(region_id)
            self._record_readonly_stat(region_id, predicted_ro)
            if is_write:
                transitioned = self.readonly.on_store(region_id)
                if transitioned:
                    self._propagate_shared_counter(result, region_id)
            elif predicted_ro:
                # Shared on-chip counter: no fetch, no BMT (Fig. 4).
                self.shared_counter_reads += 1
                if self._observe:
                    self.obs.mee_event(self.partition_id,
                                       "shared_counter_read", cycle)
                return True

        if scheme.common_counters:
            if is_write:
                was_common = self.common.is_common(ctr_line)
                self.common.record_write(ctr_line, block_id)
                self.counters.record_write(block_id)
                if was_common:
                    # First diverging write materialises the line's
                    # per-block counters in the counter cache.
                    self._ctr_access(result, block_id, is_write=True, fetch=False)
                    self.common_counter_hits += 1
                    if self._observe:
                        self.obs.mee_event(self.partition_id,
                                           "common_counter_hit", cycle)
                    return read_only
            elif self.common.is_common(ctr_line):
                self.common_counter_hits += 1
                if self._observe:
                    self.obs.mee_event(self.partition_id,
                                       "common_counter_hit", cycle)
                return read_only

        if is_write:
            overflow = self.counters.record_write(block_id)
            if overflow:
                self._reencrypt_line(result, ctr_line)
            self._ctr_access(result, block_id, is_write=True, fetch=True)
        else:
            self._ctr_access(result, block_id, is_write=False, fetch=True)
        return read_only

    def _ctr_access(self, result: MEEResult, block_id: int, is_write: bool, fetch: bool) -> None:
        ref = mlayout.counter_sector(block_id)
        transfers, displaced, hit = self.caches.access(
            KIND_CTR, ref.line_key, ref.sector, is_write=is_write,
            fetch_on_miss=fetch, sectors_on_miss=self._meta_sectors_on_miss,
        )
        # Only a *read's* counter fetch blocks decryption; the write
        # path's read-modify-write fetch is off the critical path.
        self._emit(result, transfers, displaced,
                   critical_kind=None if is_write else KIND_CTR)
        if not hit and fetch:
            # Counter came from memory: its BMT path must be verified
            # (read) or will be re-hashed (write).
            leaf = mlayout.bmt_leaf(block_id)
            t, d = self.bmt.walk(self.caches, leaf, is_write=is_write,
                                 sectors_on_miss=self._meta_sectors_on_miss)
            self._emit(result, t, d)

    def _propagate_shared_counter(self, result: MEEResult, region_id: int) -> None:
        """Fig. 8: a write to a read-only region copies the shared
        counter into the region's major counters (in the counter cache,
        no fetch needed — the values are generated on chip) and folds
        the region back under the BMT."""
        region_size = self.scheme.detectors.readonly_region_size
        line_cov = mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE
        first_block = (region_id * region_size) // constants.BLOCK_SIZE
        lines = max(1, region_size // line_cov)
        for i in range(lines):
            line_key = mlayout.counter_line(first_block) + i
            self.counters.set_major(line_key, self.shared_counter.value)
            base_block = line_key * mlayout.CTR_LINE_COVERAGE_BLOCKS
            for sector in range(constants.SECTORS_PER_BLOCK):
                transfers, displaced, _ = self.caches.access(
                    KIND_CTR, line_key, sector, is_write=True, fetch_on_miss=False,
                )
                self._emit(result, transfers, displaced)
            t, d = self.bmt.walk(self.caches, line_key, is_write=True,
                                 sectors_on_miss=self._meta_sectors_on_miss)
            self._emit(result, t, d)

    def _reencrypt_line(self, result: MEEResult, ctr_line: int) -> None:
        """Minor-counter overflow: re-encrypt the line's whole coverage
        (read + write every covered data block)."""
        size = mlayout.CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE
        result.requests.append(DRAMRequest(self.partition_id, size, False, "ctr"))
        result.requests.append(DRAMRequest(self.partition_id, size, True, "ctr"))

    # ------------------------------------------------------------------------
    # MAC path (dual granularity, Tables III/IV)
    # ------------------------------------------------------------------------

    def _mac_path(
        self, result: MEEResult, cycle: float, block_id: int, chunk_id: int,
        block_offset: int, region_id: int, read_only: bool, is_write: bool,
    ) -> None:
        scheme = self.scheme
        if not scheme.dual_granularity_mac:
            self._blk_mac_access(result, block_id, is_write=is_write)
            return

        predicted = self.streaming.predict(chunk_id)
        self._record_streaming_stat(chunk_id, predicted, region_id)
        tracked, verdicts = self.streaming.on_access(
            cycle, chunk_id, block_offset, is_write
        )

        if is_write:
            # Every write back produces its block MAC into the MAC
            # cache *dirty* — correctness does not depend on a verdict
            # ever arriving.  When a STREAM verdict lands, the chunk
            # MAC absorbs them and the dirty bits are dropped (the
            # block-MAC write traffic of streaming chunks is averted).
            self._blk_mac_access(result, block_id, is_write=True)
            self._chunk_mac_stale[chunk_id] = True
            if scheme.mac_conflict_policy == "update_both":
                self._chunk_mac_access(result, chunk_id, is_write=True)
                self._chunk_mac_stale.pop(chunk_id, None)
        elif predicted is Pattern.STREAM and tracked:
            # Coarse path: the monitoring MAT accumulates the chunk
            # digest, so one chunk-MAC fetch verifies the whole stream.
            self._chunk_mac_access(result, chunk_id, is_write=False)
            if self._chunk_mac_stale.get(chunk_id, False):
                # The chunk MAC is out of date (writes since its last
                # production): the verification falls back to the
                # block MAC — the paper's "check the other MAC" remedy.
                self.rechecks += 1
                if self._observe:
                    self.obs.mee_event(self.partition_id, "mac_recheck",
                                       cycle)
                self._blk_mac_access(result, block_id, is_write=False,
                                     as_mispred=True)
        else:
            # Predicted random, or no MAT free to accumulate a chunk
            # digest: per-block MAC verification.
            self._blk_mac_access(result, block_id, is_write=False)
            if self._blk_macs_stale.get(chunk_id, False):
                # DRAM block MACs lag the chunk MAC (their dirty bits
                # were dropped at a STREAM verdict): fall back to the
                # chunk MAC.
                self.rechecks += 1
                if self._observe:
                    self.obs.mee_event(self.partition_id, "mac_recheck",
                                       cycle)
                self._chunk_mac_access(result, chunk_id, is_write=False,
                                       as_mispred=True)

        for verdict in verdicts:
            if self._observe:
                self.obs.mee_event(
                    self.partition_id,
                    f"verdict_{verdict.pattern.value}", cycle, instant=True,
                )
            self._handle_verdict(result, verdict)

    def _handle_verdict(self, result: MEEResult, verdict: Verdict) -> None:
        """Apply the remedial traffic of Tables III and IV when a MAT
        verdict disagrees with the prediction that was in force."""
        chunk = verdict.chunk_id
        region = (chunk * self.scheme.detectors.stream_chunk_size
                  ) // self.scheme.detectors.readonly_region_size
        read_only = (
            self.scheme.readonly_optimization and self.readonly.predict(region)
        )
        blocks = self.scheme.detectors.blocks_per_chunk
        first_block = chunk * blocks

        if verdict.pattern is Pattern.STREAM:
            if verdict.had_write:
                # Produce and update the chunk MAC from the block MACs
                # of the monitored stream, then drop their dirty bits:
                # one 8 B chunk MAC replaces 32 block-MAC write backs.
                self._chunk_mac_access(result, chunk, is_write=True)
                self._chunk_mac_stale.pop(chunk, None)
                cleaned = 0
                for b in range(first_block, first_block + blocks,
                               self._mac_sector_coverage):
                    ref = mlayout.mac_sector(b, self.scheme.mac_size)
                    if self.caches.clean(KIND_MAC, ref.line_key, ref.sector):
                        cleaned += 1
                if cleaned:
                    # The DRAM copies of those block MACs are now
                    # behind the data; the chunk MAC is authoritative.
                    self._blk_macs_stale[chunk] = True
            elif verdict.predicted is Pattern.RANDOM and not read_only:
                # Random->stream misprediction on a read stream: the
                # chunk MAC is re-fetched and re-produced (Table III,
                # last row).
                self._chunk_mac_access(result, chunk, is_write=True,
                                       as_mispred=True)
                self._chunk_mac_stale.pop(chunk, None)
        else:  # RANDOM verdict
            if verdict.predicted is Pattern.STREAM:
                if self._blk_macs_stale.get(chunk, False):
                    # The chunk will be handled with block MACs from
                    # now on, but their DRAM copies are stale: re-fetch
                    # every data block (validated by the chunk MAC) and
                    # rewrite up-to-date block MACs (Table III row 3 /
                    # Table IV row 2).
                    result.requests.append(
                        DRAMRequest(self.partition_id,
                                    blocks * constants.BLOCK_SIZE,
                                    False, "mispred")
                    )
                    for b in range(first_block, first_block + blocks,
                                   self._mac_sector_coverage):
                        self._blk_mac_access(result, b, is_write=True)
                    self._blk_macs_stale.pop(chunk, None)
                else:
                    # Block MACs are up to date (context init or dirty
                    # in cache); they only need re-fetching to verify
                    # the blocks that were actually read under the
                    # chunk MAC during the monitoring phase (Table III
                    # row 2) — the MAT's touched mask identifies them.
                    mask = verdict.touched_mask
                    block = first_block
                    while mask:
                        if mask & ((1 << self._mac_sector_coverage) - 1):
                            self._blk_mac_access(result, block,
                                                 is_write=False,
                                                 as_mispred=True)
                        mask >>= self._mac_sector_coverage
                        block += self._mac_sector_coverage

    # -- MAC cache helpers -----------------------------------------------------

    def _blk_mac_access(
        self, result: MEEResult, block_id: int, is_write: bool,
        as_mispred: bool = False,
    ) -> None:
        ref = mlayout.mac_sector(block_id, self.scheme.mac_size)
        # MAC updates never read the old MAC (the new value is computed
        # from the data): write-allocate without fetch.
        transfers, displaced, _ = self.caches.access(
            KIND_MAC, ref.line_key, ref.sector, is_write=is_write,
            fetch_on_miss=not is_write,
            sectors_on_miss=self._meta_sectors_on_miss,
        )
        self._emit(result, transfers, displaced,
                   mispred="mispred" if as_mispred else None)

    def _chunk_mac_access(
        self, result: MEEResult, chunk_id: int, is_write: bool,
        as_mispred: bool = False,
    ) -> None:
        ref = mlayout.chunk_mac_sector(chunk_id, self.scheme.mac_size)
        transfers, displaced, _ = self.caches.access(
            KIND_MAC, ref.line_key, ref.sector, is_write=is_write,
            fetch_on_miss=not is_write,
            sectors_on_miss=self._meta_sectors_on_miss,
        )
        self._emit(result, transfers, displaced,
                   mispred="mispred" if as_mispred else None)

    # ------------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------------

    def _emit(
        self,
        result: MEEResult,
        transfers: List[MetaTransfer],
        displaced: List[DisplacedData],
        critical_kind: Optional[str] = None,
        mispred: Optional[str] = None,
    ) -> None:
        for t in transfers:
            kind = mispred or t.kind
            critical = (
                critical_kind is not None
                and t.kind == critical_kind
                and not t.is_write
            )
            partition = self._route(t)
            result.requests.append(
                DRAMRequest(partition, t.size, t.is_write, kind, critical)
            )
        result.displaced_data.extend(displaced)

    def _route(self, transfer: MetaTransfer) -> int:
        """Which DRAM channel carries this metadata transfer?

        Local metadata lives in its own partition's share; physically
        addressed metadata lives wherever the carve-out address maps.
        """
        if self.scheme.local_metadata:
            return self.partition_id
        if transfer.kind == KIND_CTR:
            addr = self.layout.counter_address(transfer.line_key)
        elif transfer.kind == KIND_MAC:
            addr = self.layout.mac_address(transfer.line_key)
        else:
            addr = self.layout.bmt_address(transfer.line_key)
        return self.mapper.partition_of(addr)

    def _meta_partition(self, addr: int) -> int:
        if self.scheme.local_metadata:
            return self.partition_id
        return self.mapper.partition_of(addr)

    def flush(self) -> List[DRAMRequest]:
        """Context teardown: push all dirty metadata to DRAM."""
        requests = []
        for t in self.caches.flush():
            requests.append(
                DRAMRequest(self._route(t), t.size, True, t.kind)
            )
        return requests

    # ------------------------------------------------------------------------
    # Prediction-accuracy accounting (Figs. 10 and 11)
    # ------------------------------------------------------------------------

    def _record_readonly_stat(self, region_id: int, predicted: bool) -> None:
        truth = self.truth.readonly_truth(self.partition_id, self.kernel_idx, region_id)
        if truth is None:
            return
        category = self.readonly.attribute(region_id, predicted, truth)
        self._bump(self.readonly_stats, category)

    def _record_streaming_stat(
        self, chunk_id: int, predicted: Pattern, region_id: int
    ) -> None:
        truth = self.truth.stream_truth(self.partition_id, chunk_id, self._access_seq)
        if truth is None:
            return
        read_only = (
            self.scheme.readonly_optimization and self.readonly.predict(region_id)
        )
        category = self.streaming.attribute(chunk_id, predicted, truth, read_only)
        self._bump(self.streaming_stats, category)

    @staticmethod
    def _bump(stats: PredictionStats, category: str) -> None:
        setattr(stats, category, getattr(stats, category) + 1)
