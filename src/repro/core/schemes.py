"""The evaluated secure-memory designs (Table VIII).

Every design is a :class:`repro.common.config.SchemeConfig` produced by
:func:`repro.common.config.scheme_config`; this module adds the
human-facing catalogue used by the benchmarks and reports.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import SchemeConfig, scheme_config
from repro.common.types import Scheme

#: Paper descriptions, verbatim in spirit (Table VIII).
SCHEME_DESCRIPTIONS: Dict[Scheme, str] = {
    Scheme.UNPROTECTED: "Baseline GPU without secure memory (normalisation baseline).",
    Scheme.NAIVE: "Secure memory with physically-addressed metadata, as on CPUs.",
    Scheme.COMMON_CTR: "Common counters [17] over physically-addressed metadata.",
    Scheme.PSSM: "PSSM [33]: partition-local, sectored security metadata.",
    Scheme.PSSM_CTR: "PSSM metadata construction plus the common-counter scheme.",
    Scheme.SHM: "This paper: read-only shared counter + dual-granularity MACs on PSSM.",
    Scheme.SHM_CCTR: "SHM combined with the common-counter scheme.",
    Scheme.SHM_VL2: "SHM using the L2 as a victim cache for security metadata.",
    Scheme.SHM_READONLY: "SHM's read-only/shared-counter optimisation only (per-block MACs).",
    Scheme.SHM_UPPER_BOUND: "SHM with unlimited, profile-initialised detectors.",
}

#: The designs of the overall-performance comparison (Fig. 12).
FIG12_SCHEMES: List[Scheme] = [
    Scheme.NAIVE,
    Scheme.COMMON_CTR,
    Scheme.PSSM,
    Scheme.SHM,
    Scheme.SHM_UPPER_BOUND,
]

#: The designs of the optimisation breakdown (Fig. 13).
FIG13_SCHEMES: List[Scheme] = [
    Scheme.PSSM,
    Scheme.PSSM_CTR,
    Scheme.SHM_READONLY,
    Scheme.SHM,
    Scheme.SHM_CCTR,
]

#: The designs of the bandwidth-overhead comparison (Fig. 14).
FIG14_SCHEMES: List[Scheme] = [
    Scheme.NAIVE,
    Scheme.COMMON_CTR,
    Scheme.PSSM,
    Scheme.SHM_READONLY,
    Scheme.SHM,
]


def all_schemes() -> List[SchemeConfig]:
    """Every Table VIII design, in catalogue order."""
    return [scheme_config(s) for s in SCHEME_DESCRIPTIONS]


def describe(scheme: Scheme) -> str:
    return SCHEME_DESCRIPTIONS[scheme]
