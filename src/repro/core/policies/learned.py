"""Learned adaptive security policies (the ROADMAP's ML-guided item).

The paper's detectors are fixed heuristics — an all-ones streaming bit
vector, K = 32 monitor accesses, a 6 K-cycle timeout, host-copy-only
read-only marking — that thrash under phase churn and multi-tenant
contention.  This module swaps them for *online learned* predictors
trained on exactly the substrate the decision ledger
(:mod:`repro.obs.decisions`) records: the stable per-region 11-float
feature vector, with sample weights derived from the misprediction
cost measured by the MEE's ``_led_begin``/``_led_end`` emission scope.

Two policy families, each one ``register_scheme`` entry away from the
whole stack (SimConfig / Runner / campaign / CLI):

* ``pssm_learned`` (``learned_policy="logit"``) — the adaptive
  machinery of SHM (shared read-only counter, dual-granularity MACs)
  driven by online logistic regression instead of the paper's bit
  vectors.  The streaming model is *cost-sensitive*: it only ever
  vetoes the heuristic toward RANDOM, when the measured expected cost
  of a wrong STREAM prediction exceeds the expected value of the
  coarse-MAC path — so on stable workloads it converges to the
  heuristic, and under churn it stops paying the expensive
  predicted-STREAM/verdict-RANDOM remediation.  The read-only model
  *promotes* regions the host never marked after a long store-free
  read streak, and demotions train it with the measured propagation
  cost as the sample weight.

* ``shm_bandit`` (``learned_policy="bandit"``) — per-region
  epsilon-greedy contextual bandit over protection *arms*: the cross
  product of counter mode (shared read-only counter + BMT exclusion
  vs. plain split counters under the full BMT) and MAC granularity
  (dual vs. block-only).  Every region re-chooses its arm each epoch
  from measured reward = proxy savings − charged misprediction stall.

Determinism: all arithmetic is plain int/float, exploration is seeded
by ``zlib.crc32`` over ``(partition, region, epoch)`` — no ``random``
module state, no ``hash()`` — so learned-scheme runs are byte-identical
across execution cores, serial vs. pool campaigns and any
``PYTHONHASHSEED`` (pinned by the determinism suite).

The taps are the same shared decision sites the ledger uses, so both
execution cores support learned schemes, and the exact-type fusion
check in :class:`~repro.core.mee.MemoryEncryptionEngine` routes
learned subclasses onto the generic (shared) policy path on both.
"""

from __future__ import annotations

import zlib
from math import exp
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.common.config import DetectorConfig
from repro.common.types import Pattern, Scheme
from repro.core.policies.base import CounterPolicy, MACPolicy
from repro.core.policies.counter import (
    CommonCounterPolicy,
    SharedReadonlyCounterPolicy,
    SplitCounterPolicy,
)
from repro.core.policies.mac import DualGranularityMACPolicy
from repro.core.policies.registry import SCHEME_REGISTRY, register_scheme
from repro.core.readonly import ReadOnlyDetector
from repro.core.streaming import StreamingDetector, Verdict
from repro.obs.decisions import _GAP_BUCKETS, _RegionState

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.core.mee import MemoryEncryptionEngine, MEEResult

#: Length of the ledger's per-region feature vector.
FEATURES = 3 + _GAP_BUCKETS

#: SGD step for the online logistic models.
LEARNING_RATE = 0.15

#: Stall cycles mapped to one extra unit of sample weight.
COST_NORM = 256.0

#: Cap on a single sample's weight (a catastrophic mispredict teaches
#: hard, but must not blow the weights up).
MAX_SAMPLE_WEIGHT = 8.0

#: Chunk verdicts before a chunk's own features outrank the
#: partition-global fallback, and model updates before the streaming
#: model may veto the heuristic (cold start = the paper's detector).
MIN_REGION_OBS = 2
MIN_MODEL_UPDATES = 8

#: Proxy stall cycles one STREAM verdict's worth of coarse chunk-MAC
#: reads saves over the per-block path (~K monitored accesses each
#: skipping a block-MAC probe; reward shaping — the measured
#: misprediction costs dominate the veto decision).
CHUNK_READ_SAVING = 32.0

#: Proxy stall cycles one shared-counter read saves (skipped counter
#: fetch + BMT walk when the metadata missed on chip).
SHARED_READ_SAVING = 2.0

#: Proxy stall cycles a single coarse chunk-MAC read saves over one
#: block-MAC probe (the bandit's per-access reward unit).
COARSE_READ_SAVING = 2.0

#: Store-free reads of a region before the learned read-only model
#: considers promoting it.
PROMOTE_STREAK = 64

#: Minimum model score to promote (once the model has been trained).
PROMOTE_THRESHOLD = 0.5

#: Bandit: accesses per region epoch, and the exploration rate.
EPOCH_ACCESSES = 256
EPSILON = 0.1

#: The bandit's protection arms: (counter mode, MAC granularity).
#: "shared" keeps predicted-read-only reads on the shared counter and
#: out of the BMT (the paper's design); "split" folds the region back
#: under split counters + the full BMT.  "dual" allows the coarse
#: chunk-MAC read path; "block" pins the region to per-block MACs.
#: Arm 0 is the paper's composition — the cold-start default.
ARMS: Tuple[Tuple[str, str], ...] = (
    ("shared", "dual"),
    ("shared", "block"),
    ("split", "dual"),
    ("split", "block"),
)


def crc_unit(*parts: object) -> float:
    """Deterministic pseudo-uniform draw in [0, 1): ``crc32`` of the
    stringified parts.  No RNG state, immune to ``PYTHONHASHSEED``."""
    key = ":".join(str(p) for p in parts).encode("ascii")
    return zlib.crc32(key) / 4294967296.0


def _policy_stall(mee: "MemoryEncryptionEngine", cost_bytes: float,
                  cost_transfers: int) -> float:
    """The ledger's analytic stall model, computed policy-side so the
    learned feedback works with or without a ledger attached."""
    gpu = mee.config.gpu
    return (cost_transfers * gpu.dram_request_overhead
            + cost_bytes / gpu.dram_bytes_per_cycle)


class OnlineLogit:
    """Online logistic regression over the ledger's 11-float fv.

    Plain-float SGD on the log loss; ``weight`` scales one sample's
    step (misprediction cost makes expensive mistakes teach harder).
    """

    __slots__ = ("weights", "bias", "lr", "updates")

    def __init__(self, lr: float = LEARNING_RATE, bias: float = 0.0) -> None:
        self.weights = [0.0] * FEATURES
        self.bias = bias
        self.lr = lr
        self.updates = 0

    def score(self, fv: List[float]) -> float:
        """P(label = 1) for one feature vector."""
        z = self.bias
        weights = self.weights
        for i in range(FEATURES):
            z += weights[i] * fv[i]
        if z >= 30.0:
            return 1.0
        if z <= -30.0:
            return 0.0
        return 1.0 / (1.0 + exp(-z))

    def update(self, fv: List[float], label: float,
               weight: float = 1.0) -> None:
        if weight > MAX_SAMPLE_WEIGHT:
            weight = MAX_SAMPLE_WEIGHT
        step = (label - self.score(fv)) * self.lr * weight
        self.bias += step
        weights = self.weights
        for i in range(FEATURES):
            weights[i] += step * fv[i]
        self.updates += 1


# ---------------------------------------------------------------------------
# Learned detectors
# ---------------------------------------------------------------------------

class LearnedStreamingDetector(StreamingDetector):
    """The paper's streaming detector plus a cost-sensitive logistic
    veto.

    The bit vector stays the baseline prediction, and the veto applies
    at *predict* time: when the partition-global verdict context says
    the measured expected cost of predicting STREAM (probability of a
    RANDOM verdict x the mean charged cost of that remediation)
    exceeds its expected value (probability of a STREAM verdict x the
    mild random->stream remedy plus the foregone coarse-read saving),
    every STREAM prediction is vetoed to RANDOM — *before* the first
    misprediction of a freshly churned chunk is paid, which a
    verdict-time override can never do (by verdict delivery the bit
    vector has already learned the same fact).  Chunks with enough
    history of their own get a per-chunk decision instead: a RANDOM
    override, or a STREAM exemption from the global veto.  The veto
    only ever turns STREAM into RANDOM: forcing STREAM against the
    heuristic has no measured upside, and the one-sided rule keeps
    stable workloads byte-close to the paper's behaviour.
    """

    def __init__(self, config: DetectorConfig, model: OnlineLogit) -> None:
        super().__init__(config)
        self.model = model
        self._bank: Dict[int, _RegionState] = {}
        # Partition-global verdict features: the fallback context for
        # chunks with thin history.  Under heavy churn a chunk's own
        # past says little about its re-rolled pattern, but the
        # partition-wide verdict mix says a lot — without the fallback
        # the veto arrives only after MIN_REGION_OBS verdicts per
        # chunk, long after the misprediction cost was paid.
        self._global = _RegionState()
        # Veto the bit vector's STREAM predictions by default?  Set
        # from the global context at verdict granularity, read O(1)
        # on the per-access predict path.
        self._veto_default = False
        # Per-chunk decisions for chunks with rich history: RANDOM
        # vetoes the heuristic, STREAM exempts the chunk from the
        # global veto.  Only consulted when the bit vector says STREAM.
        self._override: Dict[int, Pattern] = {}
        # Measured mean remediation stall per error direction.
        self._cost_sr = 0.0   # predicted STREAM, verdict RANDOM
        self._n_sr = 0
        self._cost_rs = 0.0   # predicted RANDOM, verdict STREAM
        self._n_rs = 0
        self.vetoes = 0       # RANDOM overrides installed

    def predict(self, chunk_id: int) -> Pattern:
        base = super().predict(chunk_id)
        if base is Pattern.STREAM:
            override = self._override.get(chunk_id)
            if override is not None:
                return override
            if self._veto_default:
                return Pattern.RANDOM
        return base

    def observe_verdict(self, cycle: float, verdict: Verdict,
                        stall: float) -> float:
        """Train on one delivered verdict and refresh the chunk's
        override.  Returns the model's pre-update streaming score for
        ledger provenance (-1.0 while the chunk had no history)."""
        chunk = verdict.chunk_id
        state = self._bank.get(chunk)
        if state is None:
            state = self._bank[chunk] = _RegionState()
        score = -1.0
        label = 1.0 if verdict.pattern is Pattern.STREAM else 0.0
        fv = None
        if state.decisions >= MIN_REGION_OBS:
            fv = state.features()
        elif self._global.decisions:
            fv = self._global.features()
        if fv is not None:
            score = self.model.score(fv)
            self.model.update(fv, label, 1.0 + stall / COST_NORM)
        if verdict.pattern is not verdict.predicted and stall > 0.0:
            if verdict.predicted is Pattern.STREAM:
                self._cost_sr += stall
                self._n_sr += 1
            else:
                self._cost_rs += stall
                self._n_rs += 1
        had_write = bool(verdict.had_write)
        blocks = self.config.blocks_per_chunk
        state.observe(cycle, had_write, verdict.touched_mask, blocks)
        self._global.observe(cycle, had_write, verdict.touched_mask, blocks)
        self._refresh_override(chunk, state)
        return score

    def _veto_pays(self, p_stream: float) -> bool:
        """Cost-sensitive decision: is predicting RANDOM cheaper in
        expectation than trusting a STREAM prediction, at this
        streaming probability and the measured remediation costs?"""
        risk_stream = (1.0 - p_stream) * (self._cost_sr / self._n_sr)
        risk_random = p_stream * (
            CHUNK_READ_SAVING
            + (self._cost_rs / self._n_rs if self._n_rs else 0.0))
        return risk_stream > risk_random

    def _refresh_override(self, chunk: int, state: _RegionState) -> None:
        if self.model.updates < MIN_MODEL_UPDATES or not self._n_sr:
            self._veto_default = False
            self._override.pop(chunk, None)
            return
        self._veto_default = self._veto_pays(
            self.model.score(self._global.features()))
        if self._veto_default:
            self.vetoes += 1
        if state.decisions >= MIN_REGION_OBS:
            self._override[chunk] = (
                Pattern.RANDOM
                if self._veto_pays(self.model.score(state.features()))
                else Pattern.STREAM)
        else:
            self._override.pop(chunk, None)


class LearnedReadOnlyDetector(ReadOnlyDetector):
    """The paper's read-only detector plus model-driven promotion.

    The host-copy bit vector stays authoritative; the learned layer
    adds promotions for regions the host never marked.  A store to a
    promoted region demotes it (and still triggers shared-counter
    propagation — the same remediation path a host-marked region's
    first store takes, so promotion can only cost bandwidth, never
    correctness)."""

    def __init__(self, config: DetectorConfig, model: OnlineLogit) -> None:
        super().__init__(config)
        self.model = model
        self._promoted: Dict[int, bool] = {}
        self.promotions = 0
        self.demotions = 0

    def predict(self, region_id: int) -> bool:
        if region_id in self._promoted:
            return True
        return super().predict(region_id)

    def is_promoted(self, region_id: int) -> bool:
        return region_id in self._promoted

    def promote(self, region_id: int) -> None:
        self._promoted[region_id] = True
        self.promotions += 1

    def on_store(self, region_id: int) -> bool:
        promoted = self._promoted.pop(region_id, False)
        if promoted:
            self.demotions += 1
            self.transitions += 1
        # After the pop, super's predict() sees only the bit vector.
        was_read_only = super().on_store(region_id)
        return was_read_only or promoted

    def mark_written(self, region_ids) -> None:
        regions = list(region_ids)
        for region in regions:
            if self._promoted.pop(region, False):
                self.demotions += 1
        super().mark_written(regions)


# ---------------------------------------------------------------------------
# Logit-driven policies (pssm_learned)
# ---------------------------------------------------------------------------

class LearnedReadonlyCounterPolicy(SharedReadonlyCounterPolicy):
    """Shared read-only counters with learned promotion.

    Reads of not-yet-read-only regions feed a per-region
    :class:`_RegionState`; after :data:`PROMOTE_STREAK` store-free
    reads the model scores the region's fv and, above
    :data:`PROMOTE_THRESHOLD`, promotes it onto the shared counter.  A
    store to a promoted region measures the propagation cost (the
    scope works with or without a ledger) and trains the model with it
    as a negative, cost-weighted sample."""

    def __init__(self, mee: "MemoryEncryptionEngine", inner: CounterPolicy,
                 detector: LearnedReadOnlyDetector) -> None:
        super().__init__(mee, inner)
        self.detector = detector
        self._bank: Dict[int, _RegionState] = {}
        self._streak: Dict[int, int] = {}

    def access(self, result: "MEEResult", cycle: float, block_id: int,
               region_id: int, is_write: bool) -> bool:
        mee = self.mee
        detector = self.detector
        predicted_ro = detector.predict(region_id)
        mee._record_readonly_stat(region_id, predicted_ro)
        if is_write:
            evicted = (detector.aliased_clearer(region_id)
                       if mee._led else -1)
            was_promoted = detector.is_promoted(region_id)
            state = self._bank.get(region_id)
            if state is None:
                state = self._bank[region_id] = _RegionState()
            self._streak[region_id] = 0
            transitioned = detector.on_store(region_id)
            if transitioned:
                mee._led_begin()
                mee._propagate_shared_counter(result, region_id)
                cost_bytes, cost_transfers = mee._led_end()
                if was_promoted:
                    stall = _policy_stall(mee, cost_bytes, cost_transfers)
                    detector.model.update(state.features(), 0.0,
                                          1.0 + stall / COST_NORM)
                if mee._led:
                    if was_promoted:
                        mee.led.learned_demote(cycle, mee.partition_id,
                                               mee.kernel_idx, region_id)
                    mee.led.ro_transition(
                        cycle, mee.partition_id, mee.kernel_idx,
                        region_id, evicted, cost_bytes, cost_transfers)
            state.observe(cycle, True, -1, 1)
        elif predicted_ro:
            mee.shared_counter_reads += 1
            if mee._observe:
                mee.obs.mee_event(mee.partition_id,
                                  "shared_counter_read", cycle)
            return True
        else:
            state = self._bank.get(region_id)
            if state is None:
                state = self._bank[region_id] = _RegionState()
            state.observe(cycle, False, -1, 1)
            streak = self._streak.get(region_id, 0) + 1
            if streak >= PROMOTE_STREAK:
                streak = 0  # re-arm instead of re-scoring every access
                model = detector.model
                fv = state.features()
                # Optimistic until the model has seen a demotion.
                score = model.score(fv) if model.updates else 1.0
                if score >= PROMOTE_THRESHOLD:
                    detector.promote(region_id)
                    if mee._led:
                        mee.led.learned_promote(
                            cycle, mee.partition_id, mee.kernel_idx,
                            region_id, round(score, 6))
            self._streak[region_id] = streak
        return self.inner.access(result, cycle, block_id, region_id, is_write)


class LearnedStreamingMACPolicy(DualGranularityMACPolicy):
    """Dual-granularity MACs whose verdicts train the learned
    streaming detector: every verdict's remediation is bracketed by
    the cost scope unconditionally (ledger or not), the measured stall
    weights the model update, and a ``learned_verdict`` provenance row
    scores the model when a ledger is attached."""

    def __init__(self, mee: "MemoryEncryptionEngine",
                 detector: LearnedStreamingDetector) -> None:
        super().__init__(mee)
        self.detector = detector

    def _process_verdicts(self, result: "MEEResult", cycle: float,
                          verdicts) -> None:
        mee = self.mee
        for verdict in verdicts:
            if mee._observe:
                mee.obs.mee_event(
                    mee.partition_id,
                    f"verdict_{verdict.pattern.value}", cycle, instant=True,
                )
            mee._led_begin()
            self._handle_verdict(result, verdict)
            cost_bytes, cost_transfers = mee._led_end()
            stall = _policy_stall(mee, cost_bytes, cost_transfers)
            score = self.detector.observe_verdict(cycle, verdict, stall)
            if mee._led:
                mee.led.stream_verdict(
                    cycle, mee.partition_id, mee.kernel_idx, verdict,
                    cost_bytes, cost_transfers)
                mee.led.learned_verdict(
                    cycle, mee.partition_id, mee.kernel_idx,
                    verdict.chunk_id, verdict.predicted.value,
                    verdict.pattern.value, round(score, 6))


# ---------------------------------------------------------------------------
# Bandit-driven policies (shm_bandit)
# ---------------------------------------------------------------------------

class BanditArmSelector:
    """Per-region epsilon-greedy bandit over :data:`ARMS`.

    One selector is shared by a partition's counter and MAC policies.
    The counter policy counts region accesses; every
    :data:`EPOCH_ACCESSES` of them close an epoch: the active arm's
    running mean reward absorbs (proxy savings − charged stall) /
    epoch length, and the next arm is the greedy best — except with
    probability :data:`EPSILON` (a crc32 coin over partition, region
    and epoch) a crc32-chosen arm explores instead."""

    __slots__ = ("partition", "epsilon", "epoch_accesses", "_arm",
                 "_epoch", "_acc", "_charge", "_save", "_reward",
                 "_count", "pulls", "explores")

    def __init__(self, partition: int, epsilon: float = EPSILON,
                 epoch_accesses: int = EPOCH_ACCESSES) -> None:
        self.partition = partition
        self.epsilon = epsilon
        self.epoch_accesses = epoch_accesses
        self._arm: Dict[int, int] = {}
        self._epoch: Dict[int, int] = {}
        self._acc: Dict[int, int] = {}
        self._charge: Dict[int, float] = {}
        self._save: Dict[int, float] = {}
        self._reward: Dict[int, List[float]] = {}
        self._count: Dict[int, List[int]] = {}
        self.pulls = 0
        self.explores = 0

    def arm(self, region: int) -> Tuple[str, str]:
        return ARMS[self._arm.get(region, 0)]

    def charge(self, region: int, stall: float) -> None:
        if stall:
            self._charge[region] = self._charge.get(region, 0.0) + stall

    def save(self, region: int, amount: float) -> None:
        self._save[region] = self._save.get(region, 0.0) + amount

    def on_access(self, region: int) -> Optional[Tuple[str, float]]:
        """Count one region access.  At an epoch boundary, settle the
        closing arm's reward and pick the next arm; returns ``(arm
        label, closing reward)`` then (for provenance), else None."""
        count = self._acc.get(region, 0) + 1
        if count < self.epoch_accesses:
            self._acc[region] = count
            return None
        self._acc[region] = 0
        epoch = self._epoch.get(region, 0)
        self._epoch[region] = epoch + 1
        current = self._arm.get(region, 0)
        reward = (self._save.pop(region, 0.0)
                  - self._charge.pop(region, 0.0)) / self.epoch_accesses
        rewards = self._reward.get(region)
        if rewards is None:
            # Prior: every arm starts at one observed reward of 0.0,
            # so exploration is epsilon-driven (no forced round robin)
            # and the cold-start greedy pick is arm 0, the paper's
            # composition.
            rewards = self._reward[region] = [0.0] * len(ARMS)
            self._count[region] = [1] * len(ARMS)
        counts = self._count[region]
        counts[current] += 1
        rewards[current] += (reward - rewards[current]) / counts[current]
        if crc_unit("arm", self.partition, region, epoch) < self.epsilon:
            nxt = int(crc_unit("explore", self.partition, region, epoch)
                      * len(ARMS))
            if nxt >= len(ARMS):
                nxt = len(ARMS) - 1
            self.explores += 1
        else:
            nxt = 0
            for i in range(1, len(ARMS)):
                if rewards[i] > rewards[nxt]:
                    nxt = i
        self._arm[region] = nxt
        self.pulls += 1
        return "/".join(ARMS[nxt]), round(reward, 6)


class BanditCounterPolicy(SharedReadonlyCounterPolicy):
    """Shared read-only counters gated per region by the bandit's
    counter-mode arm.  Store-transition handling is always the base
    behaviour (arm switches must never skip a propagation the shared
    counter's prior use requires); the arm only gates the read
    fast path, so every arm is trivially sound."""

    def __init__(self, mee: "MemoryEncryptionEngine", inner: CounterPolicy,
                 selector: BanditArmSelector) -> None:
        super().__init__(mee, inner)
        self.selector = selector

    def access(self, result: "MEEResult", cycle: float, block_id: int,
               region_id: int, is_write: bool) -> bool:
        mee = self.mee
        selector = self.selector
        decision = selector.on_access(region_id)
        if decision is not None and mee._led:
            mee.led.arm_select(cycle, mee.partition_id, mee.kernel_idx,
                               region_id, decision[0], decision[1])
        predicted_ro = mee.readonly.predict(region_id)
        mee._record_readonly_stat(region_id, predicted_ro)
        if is_write:
            evicted = (mee.readonly.aliased_clearer(region_id)
                       if mee._led else -1)
            transitioned = mee.readonly.on_store(region_id)
            if transitioned:
                mee._led_begin()
                mee._propagate_shared_counter(result, region_id)
                cost_bytes, cost_transfers = mee._led_end()
                selector.charge(
                    region_id, _policy_stall(mee, cost_bytes, cost_transfers))
                if mee._led:
                    mee.led.ro_transition(
                        cycle, mee.partition_id, mee.kernel_idx,
                        region_id, evicted, cost_bytes, cost_transfers)
        elif predicted_ro and selector.arm(region_id)[0] == "shared":
            mee.shared_counter_reads += 1
            selector.save(region_id, SHARED_READ_SAVING)
            if mee._observe:
                mee.obs.mee_event(mee.partition_id,
                                  "shared_counter_read", cycle)
            return True
        return self.inner.access(result, cycle, block_id, region_id, is_write)


class BanditMACPolicy(DualGranularityMACPolicy):
    """Dual-granularity MACs gated per region by the bandit's MAC arm:
    a "block" region never takes the coarse chunk-MAC read path (its
    MAT keeps monitoring, so verdict remediation stays consistent).
    Mispredict rechecks and verdict remediation charge their measured
    stall to the region's running epoch."""

    def __init__(self, mee: "MemoryEncryptionEngine",
                 selector: BanditArmSelector) -> None:
        super().__init__(mee)
        self.selector = selector
        detectors = mee.scheme.detectors
        self._region_shift = max(
            1, detectors.readonly_region_size // detectors.stream_chunk_size)

    def _region_of(self, chunk_id: int) -> int:
        return chunk_id // self._region_shift

    def access(self, result: "MEEResult", cycle: float, block_id: int,
               chunk_id: int, block_offset: int, region_id: int,
               read_only: bool, is_write: bool) -> None:
        mee = self.mee
        selector = self.selector
        predicted = mee.streaming.predict(chunk_id)
        mee._record_streaming_stat(chunk_id, predicted, region_id)
        tracked, verdicts = mee.streaming.on_access(
            cycle, chunk_id, block_offset, is_write
        )

        if is_write:
            mee._blk_mac_access(result, block_id, is_write=True)
            self._chunk_mac_stale[chunk_id] = True
            if mee.scheme.mac_conflict_policy == "update_both":
                mee._chunk_mac_access(result, chunk_id, is_write=True)
                self._chunk_mac_stale.pop(chunk_id, None)
        elif (predicted is Pattern.STREAM and tracked
                and selector.arm(region_id)[1] == "dual"):
            mee._chunk_mac_access(result, chunk_id, is_write=False)
            selector.save(region_id, COARSE_READ_SAVING)
            if self._chunk_mac_stale.get(chunk_id, False):
                mee.rechecks += 1
                if mee._observe:
                    mee.obs.mee_event(mee.partition_id, "mac_recheck",
                                      cycle)
                mee._led_begin()
                mee._blk_mac_access(result, block_id, is_write=False,
                                    as_mispred=True)
                cost_bytes, cost_transfers = mee._led_end()
                selector.charge(
                    region_id, _policy_stall(mee, cost_bytes, cost_transfers))
                if mee._led:
                    mee.led.mac_recheck(
                        cycle, mee.partition_id, mee.kernel_idx, chunk_id,
                        "stale_chunk_mac", cost_bytes, cost_transfers)
        else:
            mee._blk_mac_access(result, block_id, is_write=False)
            if self._blk_macs_stale.get(chunk_id, False):
                mee.rechecks += 1
                if mee._observe:
                    mee.obs.mee_event(mee.partition_id, "mac_recheck",
                                      cycle)
                mee._led_begin()
                mee._chunk_mac_access(result, chunk_id, is_write=False,
                                      as_mispred=True)
                cost_bytes, cost_transfers = mee._led_end()
                selector.charge(
                    region_id, _policy_stall(mee, cost_bytes, cost_transfers))
                if mee._led:
                    mee.led.mac_recheck(
                        cycle, mee.partition_id, mee.kernel_idx, chunk_id,
                        "stale_block_macs", cost_bytes, cost_transfers)

        if verdicts:
            self._process_verdicts(result, cycle, verdicts)

    def _process_verdicts(self, result: "MEEResult", cycle: float,
                          verdicts) -> None:
        mee = self.mee
        selector = self.selector
        for verdict in verdicts:
            if mee._observe:
                mee.obs.mee_event(
                    mee.partition_id,
                    f"verdict_{verdict.pattern.value}", cycle, instant=True,
                )
            mee._led_begin()
            self._handle_verdict(result, verdict)
            cost_bytes, cost_transfers = mee._led_end()
            selector.charge(
                self._region_of(verdict.chunk_id),
                _policy_stall(mee, cost_bytes, cost_transfers))
            if mee._led:
                mee.led.stream_verdict(
                    cycle, mee.partition_id, mee.kernel_idx, verdict,
                    cost_bytes, cost_transfers)


# ---------------------------------------------------------------------------
# Composition
# ---------------------------------------------------------------------------

def build_learned_policies(
    mee: "MemoryEncryptionEngine",
) -> Tuple[CounterPolicy, MACPolicy]:
    """Compose the learned counter/MAC stack named by
    ``scheme.learned_policy`` ("logit" or "bandit"), replacing the
    MEE's detectors where the policy learns its own.  Called from
    :func:`repro.core.policies.build_policies` — before the MEE binds
    its policy entry points, so the replacement is complete."""
    scheme = mee.scheme
    kind = scheme.learned_policy
    if not (scheme.readonly_optimization and scheme.dual_granularity_mac):
        raise ValueError(
            "learned_policy requires readonly_optimization and "
            "dual_granularity_mac (the learned layer drives the "
            "adaptive machinery)")
    inner: CounterPolicy = SplitCounterPolicy(mee)
    if scheme.common_counters:
        inner = CommonCounterPolicy(mee, inner)
    if kind == "logit":
        streaming = LearnedStreamingDetector(scheme.detectors, OnlineLogit())
        readonly = LearnedReadOnlyDetector(scheme.detectors, OnlineLogit())
        mee.streaming = streaming
        mee.readonly = readonly
        return (LearnedReadonlyCounterPolicy(mee, inner, readonly),
                LearnedStreamingMACPolicy(mee, streaming))
    if kind == "bandit":
        selector = BanditArmSelector(mee.partition_id)
        return (BanditCounterPolicy(mee, inner, selector),
                BanditMACPolicy(mee, selector))
    raise ValueError(
        f"unknown learned_policy {kind!r} (expected 'logit' or 'bandit')")


# ---------------------------------------------------------------------------
# Registry entries: each learned design is one registration away from
# SimConfig / Runner / campaign / CLI.  Guarded so re-imports (pool
# workers, test reloads) stay idempotent.
# ---------------------------------------------------------------------------

if "pssm_learned" not in SCHEME_REGISTRY:
    register_scheme(
        "pssm_learned", base=Scheme.PSSM,
        description=("PSSM + the adaptive machinery driven by "
                     "ledger-trained online logistic detectors"),
        readonly_optimization=True,
        dual_granularity_mac=True,
        learned_policy="logit",
    )

if "shm_bandit" not in SCHEME_REGISTRY:
    register_scheme(
        "shm_bandit", base=Scheme.SHM,
        description=("SHM with per-region epsilon-greedy arm selection "
                     "over {counter mode, MAC granularity, BMT coverage}"),
        learned_policy="bandit",
    )
