"""Counter policies: split (baseline), common-counter compression and
the paper's shared read-only counter, as composable decorator layers.

The composition ``SharedReadonly(Common(Split))`` is control-flow
identical to the historical ``MemoryEncryptionEngine._counter_path``:
each layer either short-circuits (returning early exactly where the
original ``return`` statements sat) or delegates to its inner layer
(the original fall-through).  One deliberate fidelity quirk: under
common counters, a *write* that diverges no common line records the
write in the counter file twice — once in the common layer, once again
in the split layer it falls through to — because the original code did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.policies.base import CounterPolicy
from repro.metadata import layout as mlayout

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.core.mee import MemoryEncryptionEngine, MEEResult


class SplitCounterPolicy(CounterPolicy):
    """The baseline split-counter organisation: every access reads or
    read-modify-writes its per-block minor counter through the counter
    cache; minor-counter overflow re-encrypts the line's coverage."""

    def access(self, result: "MEEResult", cycle: float, block_id: int,
               region_id: int, is_write: bool) -> bool:
        mee = self.mee
        if is_write:
            overflow = mee.counters.record_write(block_id)
            if overflow:
                line = mlayout.counter_line(block_id)
                if mee._led:
                    mee._led_begin()
                    mee._reencrypt_line(result, line)
                    mee.led.ctr_overflow(
                        cycle, mee.partition_id, mee.kernel_idx,
                        block_id, line, *mee._led_end())
                else:
                    mee._reencrypt_line(result, line)
            mee._ctr_access(result, block_id, is_write=True, fetch=True)
        else:
            mee._ctr_access(result, block_id, is_write=False, fetch=True)
        return False


class CommonCounterPolicy(CounterPolicy):
    """Common-counter compression [17]: accesses to a line whose
    counters are still common need no counter fetch.  The first
    diverging write materialises the line's per-block counters in the
    counter cache (write-allocate, no fetch) and falls through to the
    inner policy on later accesses."""

    def __init__(self, mee: "MemoryEncryptionEngine",
                 inner: CounterPolicy) -> None:
        super().__init__(mee)
        self.inner = inner

    def access(self, result: "MEEResult", cycle: float, block_id: int,
               region_id: int, is_write: bool) -> bool:
        mee = self.mee
        ctr_line = mlayout.counter_line(block_id)
        if is_write:
            was_common = mee.common.is_common(ctr_line)
            mee.common.record_write(ctr_line, block_id)
            mee.counters.record_write(block_id)
            if was_common:
                mee._ctr_access(result, block_id, is_write=True, fetch=False)
                mee.common_counter_hits += 1
                if mee._observe:
                    mee.obs.mee_event(mee.partition_id,
                                      "common_counter_hit", cycle)
                return False
        elif mee.common.is_common(ctr_line):
            mee.common_counter_hits += 1
            if mee._observe:
                mee.obs.mee_event(mee.partition_id,
                                  "common_counter_hit", cycle)
            return False
        return self.inner.access(result, cycle, block_id, region_id, is_write)


class SharedReadonlyCounterPolicy(CounterPolicy):
    """This paper's optimisation (Figs. 4 and 8): reads of regions the
    detector predicts read-only use the on-chip shared counter — no
    counter fetch, no BMT walk.  A store to such a region folds it back
    under the BMT by propagating the shared counter into its major
    counters, then proceeds through the inner policy."""

    def __init__(self, mee: "MemoryEncryptionEngine",
                 inner: CounterPolicy) -> None:
        super().__init__(mee)
        self.inner = inner

    def access(self, result: "MEEResult", cycle: float, block_id: int,
               region_id: int, is_write: bool) -> bool:
        mee = self.mee
        predicted_ro = mee.readonly.predict(region_id)
        mee._record_readonly_stat(region_id, predicted_ro)
        if is_write:
            # Probe the slot's aliasing state before on_store mutates it.
            evicted = (mee.readonly.aliased_clearer(region_id)
                       if mee._led else -1)
            transitioned = mee.readonly.on_store(region_id)
            if transitioned:
                if mee._led:
                    mee._led_begin()
                    mee._propagate_shared_counter(result, region_id)
                    mee.led.ro_transition(
                        cycle, mee.partition_id, mee.kernel_idx,
                        region_id, evicted, *mee._led_end())
                else:
                    mee._propagate_shared_counter(result, region_id)
        elif predicted_ro:
            mee.shared_counter_reads += 1
            if mee._observe:
                mee.obs.mee_event(mee.partition_id,
                                  "shared_counter_read", cycle)
            return True
        return self.inner.access(result, cycle, block_id, region_id, is_write)
