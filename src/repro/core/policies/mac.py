"""MAC policies: per-block MACs vs the paper's dual-granularity design.

:class:`DualGranularityMACPolicy` owns the two staleness maps that used
to live on the MEE — which chunks' coarse MACs lag their blocks, and
which chunks' DRAM block MACs lag the chunk MAC — because they are
meaningful only to this policy's Tables III/IV remedial machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence

from repro.common import constants
from repro.common.types import Pattern
from repro.core.policies.base import MACPolicy
from repro.metadata import layout as mlayout
from repro.metadata.caches import KIND_MAC

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.core.mee import MemoryEncryptionEngine, MEEResult
    from repro.core.streaming import Verdict


class BlockMACPolicy(MACPolicy):
    """One MAC per data block, verified on read, produced on write —
    the organisation of every non-adaptive scheme."""

    def access(self, result: "MEEResult", cycle: float, block_id: int,
               chunk_id: int, block_offset: int, region_id: int,
               read_only: bool, is_write: bool) -> None:
        self.mee._blk_mac_access(result, block_id, is_write=is_write)


class DualGranularityMACPolicy(MACPolicy):
    """Dual-granularity MACs driven by the streaming detector
    (Section IV-C): streaming chunks verify one coarse chunk MAC,
    random chunks verify per-block MACs, and the MAT verdicts apply the
    misprediction remedies of Tables III and IV."""

    def __init__(self, mee: "MemoryEncryptionEngine") -> None:
        super().__init__(mee)
        #: Is each chunk's coarse MAC consistent with its blocks?
        #: (Consistent by default: context init computes both
        #: granularities.)
        self._chunk_mac_stale: Dict[int, bool] = {}
        #: Are a chunk's DRAM block MACs behind its data?  (Set when a
        #: STREAM verdict absorbs dirty block MACs into the chunk MAC.)
        self._blk_macs_stale: Dict[int, bool] = {}

    def access(self, result: "MEEResult", cycle: float, block_id: int,
               chunk_id: int, block_offset: int, region_id: int,
               read_only: bool, is_write: bool) -> None:
        mee = self.mee
        predicted = mee.streaming.predict(chunk_id)
        mee._record_streaming_stat(chunk_id, predicted, region_id)
        tracked, verdicts = mee.streaming.on_access(
            cycle, chunk_id, block_offset, is_write
        )

        if is_write:
            # Every write back produces its block MAC into the MAC
            # cache *dirty* — correctness does not depend on a verdict
            # ever arriving.  When a STREAM verdict lands, the chunk
            # MAC absorbs them and the dirty bits are dropped (the
            # block-MAC write traffic of streaming chunks is averted).
            mee._blk_mac_access(result, block_id, is_write=True)
            self._chunk_mac_stale[chunk_id] = True
            if mee.scheme.mac_conflict_policy == "update_both":
                mee._chunk_mac_access(result, chunk_id, is_write=True)
                self._chunk_mac_stale.pop(chunk_id, None)
        elif predicted is Pattern.STREAM and tracked:
            # Coarse path: the monitoring MAT accumulates the chunk
            # digest, so one chunk-MAC fetch verifies the whole stream.
            mee._chunk_mac_access(result, chunk_id, is_write=False)
            if self._chunk_mac_stale.get(chunk_id, False):
                # The chunk MAC is out of date (writes since its last
                # production): the verification falls back to the
                # block MAC — the paper's "check the other MAC" remedy.
                mee.rechecks += 1
                if mee._observe:
                    mee.obs.mee_event(mee.partition_id, "mac_recheck",
                                      cycle)
                if mee._led:
                    mee._led_begin()
                    mee._blk_mac_access(result, block_id, is_write=False,
                                        as_mispred=True)
                    mee.led.mac_recheck(
                        cycle, mee.partition_id, mee.kernel_idx, chunk_id,
                        "stale_chunk_mac", *mee._led_end())
                else:
                    mee._blk_mac_access(result, block_id, is_write=False,
                                        as_mispred=True)
        else:
            # Predicted random, or no MAT free to accumulate a chunk
            # digest: per-block MAC verification.
            mee._blk_mac_access(result, block_id, is_write=False)
            if self._blk_macs_stale.get(chunk_id, False):
                # DRAM block MACs lag the chunk MAC (their dirty bits
                # were dropped at a STREAM verdict): fall back to the
                # chunk MAC.
                mee.rechecks += 1
                if mee._observe:
                    mee.obs.mee_event(mee.partition_id, "mac_recheck",
                                      cycle)
                if mee._led:
                    mee._led_begin()
                    mee._chunk_mac_access(result, chunk_id, is_write=False,
                                          as_mispred=True)
                    mee.led.mac_recheck(
                        cycle, mee.partition_id, mee.kernel_idx, chunk_id,
                        "stale_block_macs", *mee._led_end())
                else:
                    mee._chunk_mac_access(result, chunk_id, is_write=False,
                                          as_mispred=True)

        if verdicts:
            self._process_verdicts(result, cycle, verdicts)

    def _process_verdicts(self, result: "MEEResult", cycle: float,
                          verdicts: "Sequence[Verdict]") -> None:
        """Apply each delivered verdict's remediation, bracketed by the
        ledger cost scope when a ledger is attached.  Overridable: the
        learned MAC policy measures the cost unconditionally and feeds
        it back into its model."""
        mee = self.mee
        for verdict in verdicts:
            if mee._observe:
                mee.obs.mee_event(
                    mee.partition_id,
                    f"verdict_{verdict.pattern.value}", cycle, instant=True,
                )
            if mee._led:
                mee._led_begin()
                self._handle_verdict(result, verdict)
                mee.led.stream_verdict(
                    cycle, mee.partition_id, mee.kernel_idx, verdict,
                    *mee._led_end())
            else:
                self._handle_verdict(result, verdict)

    def _handle_verdict(self, result: "MEEResult",
                        verdict: "Verdict") -> None:
        """Apply the remedial traffic of Tables III and IV when a MAT
        verdict disagrees with the prediction that was in force."""
        mee = self.mee
        chunk = verdict.chunk_id
        region = (chunk * mee.scheme.detectors.stream_chunk_size
                  ) // mee.scheme.detectors.readonly_region_size
        read_only = (
            mee.scheme.readonly_optimization and mee.readonly.predict(region)
        )
        blocks = mee.scheme.detectors.blocks_per_chunk
        first_block = chunk * blocks

        if verdict.pattern is Pattern.STREAM:
            if verdict.had_write:
                # Produce and update the chunk MAC from the block MACs
                # of the monitored stream, then drop their dirty bits:
                # one 8 B chunk MAC replaces 32 block-MAC write backs.
                mee._chunk_mac_access(result, chunk, is_write=True)
                self._chunk_mac_stale.pop(chunk, None)
                cleaned = 0
                for b in range(first_block, first_block + blocks,
                               mee._mac_sector_coverage):
                    ref = mlayout.mac_sector(b, mee.scheme.mac_size)
                    if mee.caches.clean(KIND_MAC, ref.line_key, ref.sector):
                        cleaned += 1
                if cleaned:
                    # The DRAM copies of those block MACs are now
                    # behind the data; the chunk MAC is authoritative.
                    self._blk_macs_stale[chunk] = True
            elif verdict.predicted is Pattern.RANDOM and not read_only:
                # Random->stream misprediction on a read stream: the
                # chunk MAC is re-fetched and re-produced (Table III,
                # last row).
                mee._chunk_mac_access(result, chunk, is_write=True,
                                      as_mispred=True)
                self._chunk_mac_stale.pop(chunk, None)
        else:  # RANDOM verdict
            if verdict.predicted is Pattern.STREAM:
                if self._blk_macs_stale.get(chunk, False):
                    # The chunk will be handled with block MACs from
                    # now on, but their DRAM copies are stale: re-fetch
                    # every data block (validated by the chunk MAC) and
                    # rewrite up-to-date block MACs (Table III row 3 /
                    # Table IV row 2).
                    mee._emit_bulk(result, blocks * constants.BLOCK_SIZE,
                                   False, "mispred")
                    for b in range(first_block, first_block + blocks,
                                   mee._mac_sector_coverage):
                        mee._blk_mac_access(result, b, is_write=True)
                    self._blk_macs_stale.pop(chunk, None)
                else:
                    # Block MACs are up to date (context init or dirty
                    # in cache); they only need re-fetching to verify
                    # the blocks that were actually read under the
                    # chunk MAC during the monitoring phase (Table III
                    # row 2) — the MAT's touched mask identifies them.
                    mask = verdict.touched_mask
                    block = first_block
                    while mask:
                        if mask & ((1 << mee._mac_sector_coverage) - 1):
                            mee._blk_mac_access(result, block,
                                                is_write=False,
                                                as_mispred=True)
                        mask >>= mee._mac_sector_coverage
                        block += mee._mac_sector_coverage
