"""Policy interfaces for the MEE's per-access decisions.

The :class:`~repro.core.mee.MemoryEncryptionEngine` used to branch on
~10 scheme flags inline; the branches are now three orthogonal policy
families, composed per scheme by :func:`repro.core.policies.
build_policies`:

* :class:`CounterPolicy` — what encryption-counter (and, transitively,
  BMT) traffic an access causes.  Counter policies are *decorators*:
  ``SharedReadonly(Common(Split))`` reproduces the original
  fall-through control flow, each layer either short-circuiting or
  delegating inward.
* :class:`MACPolicy` — block-granular vs the paper's dual-granularity
  MAC path with the streaming detector and Tables III/IV remedies.
* :class:`IntegrityPolicy` — which integrity-tree walker protects the
  counters (arity-16 lazy BMT, SGX-style eager counter tree, or none).

Policies are thin orchestrators: the metadata caches, counter files,
detectors and cache-access helpers stay on the owning MEE, so a policy
holds no simulation state beyond what is exclusively its own (e.g. the
dual-granularity staleness maps).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.core.mee import MemoryEncryptionEngine, MEEResult


class CounterPolicy(ABC):
    """Encryption-counter handling for one access."""

    def __init__(self, mee: "MemoryEncryptionEngine") -> None:
        self.mee = mee

    @abstractmethod
    def access(self, result: "MEEResult", cycle: float, block_id: int,
               region_id: int, is_write: bool) -> bool:
        """Emit this access's counter/BMT traffic into ``result``.

        Returns whether the access was treated as read-only (the MAC
        path's Tables III/IV handling needs this).
        """


class MACPolicy(ABC):
    """MAC verification/update traffic for one access."""

    def __init__(self, mee: "MemoryEncryptionEngine") -> None:
        self.mee = mee

    @abstractmethod
    def access(self, result: "MEEResult", cycle: float, block_id: int,
               chunk_id: int, block_offset: int, region_id: int,
               read_only: bool, is_write: bool) -> None:
        """Emit this access's MAC traffic into ``result``."""


class IntegrityPolicy(ABC):
    """Selects the integrity-tree walker protecting the counters."""

    name = "abstract"

    @abstractmethod
    def build_walker(self, protected_bytes: int):
        """Return a walker with the :class:`~repro.metadata.bmt.
        BMTWalker` interface covering ``protected_bytes``."""
