"""The scheme registry: named, declarative policy compositions.

Every secure-memory design the simulator can run — the ten Table VIII
designs and any custom composition — is a :class:`SchemeEntry`: a name
plus the :class:`~repro.common.config.SchemeConfig` feature flags that
select its counter / MAC / integrity policies (see
:mod:`repro.core.policies`).  The registry makes a new scheme **one
registration**::

    register_scheme(
        "shm_ctree", base=Scheme.SHM,
        description="SHM over an SGX-style counter tree",
        integrity_tree="counter_tree",
    )

after which ``"shm_ctree"`` works everywhere a scheme name does:
``SimConfig.with_scheme("shm_ctree")``, ``Runner.run(name,
"shm_ctree")``, and a campaign ``JobSpec(scheme="shm_ctree")`` — no
change to :mod:`repro.core.mee` required.  A custom entry rides on its
``base`` design's :class:`~repro.common.types.Scheme` enum tag (used
for result labelling and the unprotected check) and carries its
registry name in ``SchemeConfig.name``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Union

from repro.common.config import DetectorConfig, SchemeConfig
from repro.common.types import Scheme

#: The Table VIII designs as feature-flag deltas (the table formerly
#: inlined in ``repro.common.config.scheme_config``).
_PAPER_FLAGS: Dict[Scheme, Dict[str, Any]] = {
    Scheme.UNPROTECTED: dict(local_metadata=True, sectored_counters=True),
    Scheme.NAIVE: dict(local_metadata=False, sectored_counters=False),
    Scheme.COMMON_CTR: dict(
        local_metadata=False, sectored_counters=False, common_counters=True
    ),
    Scheme.PSSM: dict(),
    Scheme.PSSM_CTR: dict(common_counters=True),
    Scheme.SHM: dict(readonly_optimization=True, dual_granularity_mac=True),
    Scheme.SHM_CCTR: dict(
        readonly_optimization=True,
        dual_granularity_mac=True,
        common_counters=True,
    ),
    Scheme.SHM_VL2: dict(
        readonly_optimization=True,
        dual_granularity_mac=True,
        l2_victim_cache=True,
    ),
    Scheme.SHM_READONLY: dict(readonly_optimization=True),
    Scheme.SHM_UPPER_BOUND: dict(
        readonly_optimization=True,
        dual_granularity_mac=True,
        oracle_detectors=True,
        detectors=DetectorConfig(unlimited=True),
    ),
}

_FLAG_NAMES = frozenset(
    f.name for f in fields(SchemeConfig) if f.name not in ("scheme", "name")
)


@dataclass(frozen=True)
class SchemeEntry:
    """One registered design: a name and its resolved flag set."""

    name: str
    #: The Table VIII design this entry is (or extends) — carried as
    #: ``SchemeConfig.scheme`` for result labelling / baselines.
    base: Scheme
    description: str = ""
    #: Complete ``SchemeConfig`` keyword deltas (base flags already
    #: merged in for custom entries).
    flags: Dict[str, Any] = field(default_factory=dict)
    #: False for the built-in Table VIII entries.
    custom: bool = True


#: name -> entry.  Paper designs are pre-registered under their enum
#: values; custom compositions join via :func:`register_scheme`.
SCHEME_REGISTRY: Dict[str, SchemeEntry] = {}


def register_scheme(name: str, base: Union[Scheme, str] = Scheme.PSSM,
                    description: str = "", replace: bool = False,
                    **flags: Any) -> SchemeEntry:
    """Register a scheme composition under ``name``.

    ``base`` names the design whose flags the entry starts from;
    ``flags`` are :class:`SchemeConfig` field overrides applied on
    top.  Returns the entry.  Unknown flag names raise ``ValueError``
    (typos must not silently produce the base design).
    """
    if not replace and name in SCHEME_REGISTRY:
        raise ValueError(f"scheme {name!r} is already registered")
    base_scheme = Scheme(base) if not isinstance(base, Scheme) else base
    unknown = sorted(set(flags) - _FLAG_NAMES)
    if unknown:
        raise ValueError(
            f"unknown SchemeConfig flag(s) for {name!r}: {', '.join(unknown)}"
        )
    entry = SchemeEntry(
        name=name,
        base=base_scheme,
        description=description,
        flags={**_PAPER_FLAGS[base_scheme], **flags},
        custom=True,
    )
    SCHEME_REGISTRY[name] = entry
    return entry


def unregister_scheme(name: str) -> None:
    """Remove a *custom* entry (tests use this to stay hermetic).

    When the custom entry had shadowed a built-in design (a
    ``replace=True`` registration over a Table VIII name), the built-in
    entry is restored instead of leaving a hole in the registry — a
    shadow-then-unregister pair previously deleted the design outright,
    breaking every later ``resolve_scheme`` of it.
    """
    entry = SCHEME_REGISTRY.get(name)
    if entry is None:
        return
    if not entry.custom:
        raise ValueError(f"cannot unregister built-in scheme {name!r}")
    del SCHEME_REGISTRY[name]
    builtin = _BUILTIN_ENTRIES.get(name)
    if builtin is not None:
        SCHEME_REGISTRY[name] = builtin


def scheme_entry(scheme: Union[Scheme, str]) -> SchemeEntry:
    """Resolve a :class:`Scheme` member or registry name to its entry."""
    name = scheme.value if isinstance(scheme, Scheme) else scheme
    entry = SCHEME_REGISTRY.get(name)
    if entry is None:
        raise ValueError(
            f"unknown scheme {name!r}; registered: "
            f"{', '.join(available_schemes())}"
        )
    return entry


def available_schemes(custom_only: bool = False) -> List[str]:
    return sorted(
        name for name, entry in SCHEME_REGISTRY.items()
        if entry.custom or not custom_only
    )


def resolve_scheme(value: str) -> Union[Scheme, str]:
    """Map a scheme name string to the enum member when it names a
    Table VIII design, else pass the (validated) registry name
    through — the form ``Runner.run`` and the campaign worker use."""
    try:
        return Scheme(value)
    except ValueError:
        scheme_entry(value)  # raises with the available list if unknown
        return value


def build_scheme_config(scheme: Union[Scheme, str],
                        **overrides: Any) -> SchemeConfig:
    """Materialise the :class:`SchemeConfig` of a registered design
    (the engine behind :func:`repro.common.config.scheme_config`)."""
    entry = scheme_entry(scheme)
    kwargs: Dict[str, Any] = dict(entry.flags)
    kwargs["scheme"] = entry.base
    kwargs["name"] = entry.name
    kwargs.update(overrides)
    return SchemeConfig(**kwargs)


for _scheme in Scheme:
    SCHEME_REGISTRY[_scheme.value] = SchemeEntry(
        name=_scheme.value,
        base=_scheme,
        description=f"Table VIII design {_scheme.value!r}",
        flags=dict(_PAPER_FLAGS[_scheme]),
        custom=False,
    )
del _scheme

#: Pristine copies of the built-in entries, for restore-on-unregister.
_BUILTIN_ENTRIES: Dict[str, SchemeEntry] = dict(SCHEME_REGISTRY)
