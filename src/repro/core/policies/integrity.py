"""Integrity policies: which tree (if any) protects the counters.

* ``"bmt"`` — the paper's arity-16 Bonsai Merkle tree with lazy write
  propagation (writes stop at the first cached ancestor).
* ``"counter_tree"`` — an SGX-style arity-8 counter tree whose write
  path eagerly updates every level to the root.
* ``"none"`` — no integrity tree: counters are encrypted but not
  replay-protected.  A modelling baseline that isolates the BMT's
  share of the metadata traffic; not a secure configuration.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.policies.base import IntegrityPolicy
from repro.metadata.bmt import BMTWalker
from repro.metadata.caches import DisplacedData, MetadataCaches, MetaTransfer


class NullWalker:
    """A no-traffic stand-in with the :class:`BMTWalker` interface."""

    arity = 0
    levels = 0

    def __init__(self) -> None:
        self.walks = 0
        self.nodes_touched = 0

    def walk(
        self,
        caches: MetadataCaches,
        leaf_index: int,
        is_write: bool,
        sectors_on_miss: int = 1,
    ) -> Tuple[List[MetaTransfer], List[DisplacedData]]:
        self.walks += 1
        return [], []


class BMTIntegrityPolicy(IntegrityPolicy):
    name = "bmt"

    def build_walker(self, protected_bytes: int) -> BMTWalker:
        return BMTWalker(protected_bytes)


class CounterTreeIntegrityPolicy(IntegrityPolicy):
    name = "counter_tree"

    def build_walker(self, protected_bytes: int) -> BMTWalker:
        from repro.crypto.counter_tree import CTREE_ARITY

        return BMTWalker(protected_bytes, arity=CTREE_ARITY,
                         eager_writes=True)


class NullIntegrityPolicy(IntegrityPolicy):
    name = "none"

    def build_walker(self, protected_bytes: int) -> NullWalker:
        return NullWalker()


#: ``SchemeConfig.integrity_tree`` value -> policy.
INTEGRITY_POLICIES: Dict[str, IntegrityPolicy] = {
    p.name: p for p in (BMTIntegrityPolicy(), CounterTreeIntegrityPolicy(),
                        NullIntegrityPolicy())
}


def integrity_policy(name: str) -> IntegrityPolicy:
    policy = INTEGRITY_POLICIES.get(name)
    if policy is None:
        raise ValueError(
            f"unknown integrity tree: {name!r}; "
            f"available: {', '.join(sorted(INTEGRITY_POLICIES))}"
        )
    return policy
