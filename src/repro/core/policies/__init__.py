"""Composable scheme policies for the MEE (the policy layer).

``build_policies(mee)`` translates the active
:class:`~repro.common.config.SchemeConfig` feature flags into one
counter-policy stack, one MAC policy and one integrity policy — the
decomposition the scheme registry (:mod:`repro.core.policies.registry`)
composes declaratively.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.core.policies.base import CounterPolicy, IntegrityPolicy, MACPolicy
from repro.core.policies.counter import (
    CommonCounterPolicy,
    SharedReadonlyCounterPolicy,
    SplitCounterPolicy,
)
from repro.core.policies.integrity import (
    INTEGRITY_POLICIES,
    NullWalker,
    integrity_policy,
)
from repro.core.policies.mac import BlockMACPolicy, DualGranularityMACPolicy
from repro.core.policies.registry import (
    SCHEME_REGISTRY,
    SchemeEntry,
    available_schemes,
    build_scheme_config,
    register_scheme,
    resolve_scheme,
    scheme_entry,
    unregister_scheme,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.core.mee import MemoryEncryptionEngine

__all__ = [
    "CounterPolicy",
    "MACPolicy",
    "IntegrityPolicy",
    "SplitCounterPolicy",
    "CommonCounterPolicy",
    "SharedReadonlyCounterPolicy",
    "BlockMACPolicy",
    "DualGranularityMACPolicy",
    "INTEGRITY_POLICIES",
    "NullWalker",
    "integrity_policy",
    "SCHEME_REGISTRY",
    "SchemeEntry",
    "available_schemes",
    "build_scheme_config",
    "register_scheme",
    "resolve_scheme",
    "scheme_entry",
    "unregister_scheme",
    "build_policies",
]

# Importing the package registers the learned schemes (pssm_learned,
# shm_bandit) — pool workers resolve scheme names at import time, so
# the registration must not wait for a lazy build_policies call.
from repro.core.policies import learned as _learned  # noqa: E402,F401


def build_policies(
    mee: "MemoryEncryptionEngine",
) -> Tuple[CounterPolicy, MACPolicy, IntegrityPolicy]:
    """Compose the three policies of ``mee``'s active scheme.

    The counter stack wraps outward — split, then common counters,
    then the shared read-only counter — matching the precedence the
    historical inline branching gave the optimisations.
    """
    scheme = mee.scheme
    if scheme.learned_policy:
        from repro.core.policies.learned import build_learned_policies

        counter, mac = build_learned_policies(mee)
        return counter, mac, integrity_policy(scheme.integrity_tree)
    counter: CounterPolicy = SplitCounterPolicy(mee)
    if scheme.common_counters:
        counter = CommonCounterPolicy(mee, counter)
    if scheme.readonly_optimization:
        counter = SharedReadonlyCounterPolicy(mee, counter)
    mac: MACPolicy
    if scheme.dual_granularity_mac:
        mac = DualGranularityMACPolicy(mee)
    else:
        mac = BlockMACPolicy(mee)
    return counter, mac, integrity_policy(scheme.integrity_tree)
