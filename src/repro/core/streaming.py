"""The streaming-access detector (Section IV-C, Fig. 7).

Per memory partition:

* a tag-less bit vector, indexed by 4 KB chunk id, predicting whether a
  chunk is streaming-accessed (1) or random-accessed (0).  GPU
  workloads stream by default, so it initialises to all ones;
* ``N`` memory access trackers (MATs).  A MAT pins one chunk and
  records which of its 32 blocks were touched.  After ``K = 32``
  accesses — or a 6 K-cycle timeout so a random chunk cannot pin a
  tracker forever — the MAT delivers a *verdict*: STREAM when every
  block was touched, RANDOM otherwise.  Verdicts update the bit vector
  and, on a mismatch with the prediction in force, trigger the remedial
  traffic of Tables III/IV (handled by the MEE).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bitvec import BitVector
from repro.common.config import DetectorConfig
from repro.common.types import Pattern


@dataclass
class Verdict:
    """Outcome of one MAT monitoring phase."""

    chunk_id: int
    pattern: Pattern
    had_write: bool
    #: The bit-vector prediction in force when the verdict lands.
    predicted: Pattern
    timed_out: bool = False
    #: Accesses observed during the monitoring phase (bounds the
    #: remedial re-verification work on a misprediction).
    accesses: int = 0
    #: Bitmask of the chunk blocks touched during the phase.
    touched_mask: int = 0
    #: A *different* chunk whose predictor-slot state this verdict
    #: overwrote (bit-vector aliasing), or -1 (decision provenance).
    evicted: int = -1


class AccessTracker:
    """One MAT: 20-bit tag, 1-bit write flag, 32 1-bit counters,
    5-bit access counter, 13-bit timeout counter (71 bits, Table IX)."""

    __slots__ = ("chunk_id", "write_flag", "touched_mask", "access_count", "start_cycle")

    def __init__(self, chunk_id: int, start_cycle: float) -> None:
        self.chunk_id = chunk_id
        self.write_flag = False
        self.touched_mask = 0
        self.access_count = 0
        self.start_cycle = start_cycle

    def record(self, block_offset: int, is_write: bool) -> None:
        self.touched_mask |= 1 << block_offset
        self.access_count += 1
        if is_write:
            self.write_flag = True

    def verdict_pattern(self, blocks_per_chunk: int) -> Pattern:
        full_mask = (1 << blocks_per_chunk) - 1
        if self.touched_mask == full_mask:
            return Pattern.STREAM
        return Pattern.RANDOM


class StreamingDetector:
    """One partition's streaming predictor plus its MAT file."""

    def __init__(self, config: DetectorConfig) -> None:
        self.config = config
        self.unlimited = config.unlimited
        if self.unlimited:
            self._bits: Dict[int, bool] = {}
        else:
            self._vector = BitVector(config.stream_entries, initial=True)
        self._trackers: Dict[int, AccessTracker] = {}
        # Attribution state (Fig. 11): last chunk whose verdict wrote
        # each predictor entry, and each chunk's own last verdict.
        self._entry_writer: Dict[int, int] = {}
        self.last_verdict: Dict[int, Pattern] = {}
        self.verdicts = 0
        self.timeouts = 0

    # -- Prediction ----------------------------------------------------------------

    def _index(self, chunk_id: int) -> int:
        if self.unlimited:
            return chunk_id
        return self._vector.index_of(chunk_id)

    def predict(self, chunk_id: int) -> Pattern:
        if self.unlimited:
            streaming = self._bits.get(chunk_id, True)
        else:
            streaming = self._vector.get(chunk_id)
        return Pattern.STREAM if streaming else Pattern.RANDOM

    def preset(self, chunk_id: int, pattern: Pattern) -> None:
        """Oracle initialisation for SHM_upper_bound: seed the predictor
        from a profiling pass."""
        self._set(chunk_id, pattern)
        self._entry_writer[self._index(chunk_id)] = chunk_id
        self.last_verdict[chunk_id] = pattern

    def _set(self, chunk_id: int, pattern: Pattern) -> None:
        streaming = pattern is Pattern.STREAM
        if self.unlimited:
            self._bits[chunk_id] = streaming
        else:
            self._vector.set(chunk_id, streaming)

    # -- Monitoring ----------------------------------------------------------------

    def on_access(
        self, cycle: float, chunk_id: int, block_offset: int, is_write: bool
    ) -> Tuple[bool, Sequence[Verdict]]:
        """Feed one L2 miss / write back into the MAT file.

        Returns ``(tracked, verdicts)``: whether this chunk currently
        holds a MAT (only tracked chunks can use the coarse chunk MAC
        — the MAT accumulates the chunk digest; untracked accesses
        fall back to per-block MACs), plus any verdicts delivered this
        cycle (timeouts of other trackers and a possible phase-end for
        this chunk's tracker).
        """
        verdicts = self._expire_timeouts(cycle)

        tracker = self._trackers.get(chunk_id)
        if tracker is None:
            if self.unlimited or len(self._trackers) < self.config.num_trackers:
                tracker = AccessTracker(chunk_id, cycle)
                self._trackers[chunk_id] = tracker
            else:
                # No free MAT: keep predicting, skip monitoring.
                return False, verdicts
        tracker.record(block_offset, is_write)
        if tracker.access_count >= self.config.monitor_accesses:
            phase_end = self._deliver(tracker, timed_out=False)
            if verdicts:
                verdicts.append(phase_end)  # type: ignore[attr-defined]
            else:
                # The shared no-verdict tuple is immutable; the rare
                # verdict-carrying return allocates its own list.
                verdicts = [phase_end]
        return True, verdicts

    #: Shared empty result: most accesses deliver no verdict, so the
    #: hot path returns this instead of allocating a list per access.
    _NO_VERDICTS: Sequence[Verdict] = ()

    def _expire_timeouts(self, cycle: float) -> Sequence[Verdict]:
        if not self._trackers:
            return self._NO_VERDICTS
        # Trackers are created with the current cycle as their start
        # and never restarted, so the insertion-ordered dict is sorted
        # by start_cycle: the expired trackers form a prefix, and the
        # common no-expiry case costs one comparison.
        timeout = self.config.timeout_cycles
        expired: Optional[List[AccessTracker]] = None
        prev_start = float("-inf")
        for t in self._trackers.values():
            if __debug__:
                # The prefix scan is sound only while insertion order
                # equals start-cycle order; verify it over the scanned
                # prefix (one comparison per visited tracker).
                assert t.start_cycle >= prev_start, (
                    "StreamingDetector trackers out of start-cycle "
                    "order: the timeout prefix scan would miss expiries"
                )
                prev_start = t.start_cycle
            if not cycle - t.start_cycle > timeout:
                break
            if expired is None:
                expired = [t]
            else:
                expired.append(t)
        if expired is None:
            return self._NO_VERDICTS
        out: List[Verdict] = []
        for tracker in expired:
            self.timeouts += 1
            out.append(self._deliver(tracker, timed_out=True))
        return out

    def _deliver(self, tracker: AccessTracker, timed_out: bool) -> Verdict:
        del self._trackers[tracker.chunk_id]
        pattern = tracker.verdict_pattern(self.config.blocks_per_chunk)
        predicted = self.predict(tracker.chunk_id)
        self._set(tracker.chunk_id, pattern)
        index = self._index(tracker.chunk_id)
        prior = self._entry_writer.get(index)
        self._entry_writer[index] = tracker.chunk_id
        self.last_verdict[tracker.chunk_id] = pattern
        self.verdicts += 1
        return Verdict(
            chunk_id=tracker.chunk_id,
            pattern=pattern,
            had_write=tracker.write_flag,
            predicted=predicted,
            timed_out=timed_out,
            accesses=tracker.access_count,
            touched_mask=tracker.touched_mask,
            evicted=prior if prior is not None
            and prior != tracker.chunk_id else -1,
        )

    # -- Misprediction attribution (Fig. 11) ------------------------------------------

    def attribute(
        self, chunk_id: int, predicted: Pattern, truth: Pattern, read_only: bool
    ) -> str:
        """Classify one prediction event into Fig. 11's categories."""
        if predicted is truth:
            return "correct"
        writer = self._entry_writer.get(self._index(chunk_id))
        if writer is None:
            return "mp_init"
        if writer != chunk_id:
            return "mp_aliasing"
        if read_only:
            return "mp_runtime_read_only"
        return "mp_runtime_non_read_only"

    @property
    def storage_bits(self) -> int:
        """Hardware cost (Table IX): bit vector + MATs."""
        if self.unlimited:
            return 0
        return (
            self._vector.storage_bits
            + self.config.num_trackers * self.config.tracker_storage_bits()
        )
