"""L2-as-victim-cache controller for security metadata (Section IV-D).

Streaming workloads reuse L2 data lines poorly; a 128 B MAC line, by
contrast, serves sixteen blocks' worth of verifications.  When the
sampled *data* miss rate of a partition's L2 exceeds a threshold
(default 90%), parking evicted metadata lines in the L2 is a better use
of its capacity than caching un-reused data.

Sampling uses reserved data-only sets (see
:class:`repro.memory.l2.L2Bank`), so the signal is not polluted by the
victim lines themselves.  Sampling counters reset at kernel boundaries.
"""

from __future__ import annotations

from repro.memory.l2 import PartitionL2


class VictimController:
    """Decides, per partition, whether the victim-cache mode is on."""

    #: Sampled accesses required before the miss rate is trusted.
    MIN_SAMPLES = 64
    #: Re-evaluate the decision every this many sampled accesses.
    REFRESH_INTERVAL = 256

    def __init__(self, l2: PartitionL2, threshold: float = 0.90) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.l2 = l2
        self.threshold = threshold
        self._enabled = False
        self._next_refresh = self.MIN_SAMPLES
        self.enable_events = 0

    def enabled(self) -> bool:
        """Current decision; refreshed lazily as samples accumulate."""
        samples = self.l2.sampled_accesses
        if samples >= self._next_refresh:
            self._next_refresh = samples + self.REFRESH_INTERVAL
            now_enabled = self.l2.sampled_miss_rate >= self.threshold
            if now_enabled and not self._enabled:
                self.enable_events += 1
            self._enabled = now_enabled
        return self._enabled

    def on_kernel_boundary(self) -> None:
        """The paper resets the sampling counters after each kernel."""
        self.l2.reset_sampling()
        self._enabled = False
        self._next_refresh = self.MIN_SAMPLES
