"""The read-only region detector (Section IV-B).

A tag-less, N-entry bit vector per memory partition, indexed by the
16 KB region id of the partition-local address.  Bits start at 0
(not-read-only); the command processor sets the bits of regions filled
by host memory copies at context initialisation.  Any store (or later
host copy) clears the region's bit permanently — transitions are
one-way, so aliasing can only *lose* bandwidth savings, never break
security.

The ``input_read_only_reset(range)`` host API (Fig. 9) re-arms bits for
multi-kernel input reuse; the accompanying shared-counter raise is
handled by the MEE, which owns the counter state.

The detector also carries the attribution state used to break
mispredictions down into the paper's Fig. 10 categories (init vs
aliasing).
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.common.bitvec import BitVector
from repro.common.config import DetectorConfig


class ReadOnlyDetector:
    """One partition's read-only predictor."""

    def __init__(self, config: DetectorConfig) -> None:
        self.config = config
        self.unlimited = config.unlimited
        if self.unlimited:
            self._bits: Dict[int, bool] = {}
        else:
            self._vector = BitVector(config.readonly_entries, initial=False)
        # Attribution: which region last set / cleared each entry.
        self._set_by: Dict[int, int] = {}
        self._cleared_by: Dict[int, int] = {}
        self.transitions = 0  # read-only -> not-read-only events

    # -- Indexing ----------------------------------------------------------------

    def _index(self, region_id: int) -> int:
        if self.unlimited:
            return region_id
        return self._vector.index_of(region_id)

    # -- Prediction ----------------------------------------------------------------

    def predict(self, region_id: int) -> bool:
        """Is this region currently predicted read-only?"""
        if self.unlimited:
            return self._bits.get(region_id, False)
        return self._vector.get(region_id)

    # -- State changes ----------------------------------------------------------------

    def mark_read_only(self, region_ids: Iterable[int]) -> None:
        """Command-processor path: host copies at context init (or the
        reset API) mark regions read-only."""
        for region in region_ids:
            if self.unlimited:
                self._bits[region] = True
            else:
                self._vector.set(region, True)
            self._set_by[self._index(region)] = region

    def mark_written(self, region_ids: Iterable[int]) -> None:
        """Mid-run host copies without the reset API clear the bits."""
        for region in region_ids:
            self._clear(region)

    def on_store(self, region_id: int) -> bool:
        """A kernel store hit this region.  Returns True when this is
        the read-only -> not-read-only *transition* (the bit was set),
        which triggers shared-counter propagation (Fig. 8)."""
        was_read_only = self.predict(region_id)
        self._clear(region_id)
        if was_read_only:
            self.transitions += 1
        return was_read_only

    def _clear(self, region_id: int) -> None:
        if self.unlimited:
            self._bits[region_id] = False
        else:
            self._vector.clear(region_id)
        self._cleared_by[self._index(region_id)] = region_id

    # -- Aliasing probes (decision provenance) -----------------------------------------
    #
    # The finite bit vector aliases many regions onto one slot; when a
    # decision is about to overwrite a slot, the ledger records which
    # *different* region's state it evicts.  Probe BEFORE mutating.

    def aliased_setter(self, region_id: int) -> int:
        """The different region that last *set* this region's slot, or
        -1 when the slot is fresh or owned by the same region."""
        prior = self._set_by.get(self._index(region_id))
        return prior if prior is not None and prior != region_id else -1

    def aliased_clearer(self, region_id: int) -> int:
        """The different region that last *cleared* this region's slot,
        or -1."""
        prior = self._cleared_by.get(self._index(region_id))
        return prior if prior is not None and prior != region_id else -1

    # -- Misprediction attribution (Fig. 10) ------------------------------------------

    def attribute(self, region_id: int, predicted: bool, truth: bool) -> str:
        """Classify one prediction event: ``correct`` / ``mp_init`` /
        ``mp_aliasing``.

        Aliasing is only possible in the finite predictor and only when
        the entry's last writer was a *different* region.
        """
        if predicted == truth:
            return "correct"
        if self.unlimited:
            return "mp_init"
        index = self._index(region_id)
        last_writer = (
            self._cleared_by.get(index) if not predicted else self._set_by.get(index)
        )
        if last_writer is not None and last_writer != region_id:
            return "mp_aliasing"
        return "mp_init"

    @property
    def storage_bits(self) -> int:
        """Hardware cost (Table IX): the bit vector itself."""
        if self.unlimited:
            return 0  # idealised design, not a hardware proposal
        return self._vector.storage_bits
