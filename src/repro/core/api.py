"""Host-side programming API of the secure GPU (command processor view).

Thin convenience layer tying the host programming model of the paper —
context creation with key generation, H2D copies that mark read-only
regions, the ``input_read_only_reset`` API — to a functional
:class:`repro.core.functional.SecureMemoryDevice`.  Examples and
integration tests use this instead of wiring the pieces by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common import constants
from repro.core.functional import SecureMemoryDevice
from repro.crypto.keys import KeyGenerator, KeyTuple


@dataclass
class Allocation:
    """One device-memory buffer."""

    name: str
    address: int
    size: int
    read_only: bool


class SecureGPUContext:
    """One GPU context: keys, a protected memory range, allocations.

    >>> ctx = SecureGPUContext(memory_bytes=1 << 20)
    >>> buf = ctx.alloc("input", 4096)
    >>> ctx.memcpy_h2d(buf, b"\\x07" * 4096, read_only=True)
    >>> ctx.read(buf.address, 128)[:4]
    b'\\x07\\x07\\x07\\x07'
    """

    def __init__(
        self,
        context_id: int = 0,
        memory_bytes: int = 64 * 1024 * 1024,
        key_generator: Optional[KeyGenerator] = None,
    ) -> None:
        generator = key_generator or KeyGenerator()
        self.keys: KeyTuple = generator.context_keys(context_id)
        self.device = SecureMemoryDevice(self.keys, size_bytes=memory_bytes)
        self._allocations: Dict[str, Allocation] = {}
        self._next_address = 0
        self.memory_bytes = memory_bytes

    # -- Allocation -------------------------------------------------------------

    def alloc(self, name: str, size: int) -> Allocation:
        """cudaMalloc: reserve a region-aligned buffer."""
        if name in self._allocations:
            raise ValueError(f"buffer {name!r} already allocated")
        if size <= 0:
            raise ValueError("size must be positive")
        align = self.device.region_size
        size = -(-size // constants.BLOCK_SIZE) * constants.BLOCK_SIZE
        address = self._next_address
        self._next_address = -(-(address + size) // align) * align
        if self._next_address > self.memory_bytes:
            raise MemoryError("device memory exhausted")
        allocation = Allocation(name, address, size, read_only=False)
        self._allocations[name] = allocation
        return allocation

    def buffer(self, name: str) -> Allocation:
        return self._allocations[name]

    # -- Data movement -------------------------------------------------------------

    def memcpy_h2d(self, buf: Allocation, data: bytes, read_only: bool = True) -> None:
        """Host-to-device copy.  ``read_only=True`` corresponds to the
        context-initialisation path that arms the read-only detector."""
        if len(data) > buf.size:
            raise ValueError("copy larger than buffer")
        data = self._pad(data)
        self.device.host_copy(buf.address, data, read_only=read_only)
        buf.read_only = read_only

    def memcpy_d2h(self, buf: Allocation, size: Optional[int] = None) -> bytes:
        size = buf.size if size is None else size
        size = -(-size // constants.BLOCK_SIZE) * constants.BLOCK_SIZE
        out = bytearray()
        for offset in range(0, size, constants.BLOCK_SIZE):
            out += self.device.read(buf.address + offset)
        return bytes(out)

    def read(self, address: int, size: int) -> bytes:
        out = bytearray()
        first = address - (address % constants.BLOCK_SIZE)
        last = address + size
        for block_addr in range(first, last, constants.BLOCK_SIZE):
            out += self.device.read(block_addr)
        start = address - first
        return bytes(out[start : start + size])

    def write(self, address: int, data: bytes) -> None:
        """A kernel store of arbitrary alignment and length.

        Misaligned or partial blocks are read-modify-written: the
        surrounding block is fetched (verified), spliced and
        re-encrypted — the same thing a store through a write-back
        cache does.
        """
        if not data:
            return
        block = constants.BLOCK_SIZE
        first = address - address % block
        last = address + len(data)
        for block_addr in range(first, last, block):
            lo = max(address, block_addr)
            hi = min(last, block_addr + block)
            if hi - lo == block:
                payload = data[lo - address : hi - address]
            else:
                existing = bytearray(self.device.read(block_addr))
                existing[lo - block_addr : hi - block_addr] = \
                    data[lo - address : hi - address]
                payload = bytes(existing)
            self.device.write(block_addr, payload)

    def input_read_only_reset(self, buf: Allocation) -> int:
        """The paper's new host API applied to one buffer."""
        value = self.device.input_read_only_reset(buf.address, buf.size)
        buf.read_only = True
        return value

    @staticmethod
    def _pad(data: bytes) -> bytes:
        remainder = len(data) % constants.BLOCK_SIZE
        if remainder:
            data = data + bytes(constants.BLOCK_SIZE - remainder)
        return data
