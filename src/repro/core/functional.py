"""Functional secure GPU memory: real encryption, MACs and BMT.

The simulator models *traffic*; this module models *correctness*.  It
implements an end-to-end secure memory device with genuine
cryptography, so the security claims of the paper can be exercised:

* confidentiality — data at rest is AES-CTR ciphertext;
* integrity — tampered ciphertext fails its stateful MAC;
* freshness — replayed (ciphertext, MAC, counter) triples fail the BMT;
* the read-only design — regions under the shared counter carry no BMT
  state, and the ``input_read_only_reset`` API's shared-counter raise
  defeats the cross-kernel replay attack of Section III-B (the device
  can also demonstrate the vulnerability when the raise is skipped).

The attack surface (``raw_*`` methods) models an attacker with physical
access to the GDDR modules: they can read and overwrite ciphertext,
MACs and counter storage, but not the on-chip registers (BMT root,
shared counter, keys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common import constants
from repro.common.types import ReplayAttackError, TamperError
from repro.crypto.ctr_mode import CounterModeEngine, Seed
from repro.crypto.keys import KeyTuple
from repro.crypto.mac import MACEngine
from repro.crypto.merkle import BonsaiMerkleTree
from repro.metadata.layout import CTR_LINE_COVERAGE_BLOCKS


@dataclass
class _CounterLine:
    """Split-counter state of one 16 KB region of data."""

    major: int = 0
    minors: Optional[Dict[int, int]] = None

    def minor(self, block_index: int) -> int:
        if self.minors is None:
            return 0
        return self.minors.get(block_index, 0)

    def bump(self, block_index: int) -> None:
        if self.minors is None:
            self.minors = {}
        self.minors[block_index] = self.minors.get(block_index, 0) + 1

    def serialize(self) -> bytes:
        minors = sorted((self.minors or {}).items())
        payload = self.major.to_bytes(8, "little")
        for idx, val in minors:
            payload += idx.to_bytes(2, "little") + val.to_bytes(2, "little")
        return payload


class SecureMemoryDevice:
    """A protected device-memory range with a full secure-memory stack."""

    def __init__(
        self,
        keys: KeyTuple,
        size_bytes: int = 64 * 1024 * 1024,
        region_size: int = constants.READONLY_REGION_SIZE,
    ) -> None:
        if size_bytes <= 0 or size_bytes % constants.BLOCK_SIZE:
            raise ValueError("size must be a positive multiple of the block size")
        self.size_bytes = size_bytes
        self.region_size = region_size
        self._enc = CounterModeEngine(keys.encryption)
        self._mac = MACEngine(keys.integrity)
        num_leaves = max(1, size_bytes // (CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE))
        self._bmt = BonsaiMerkleTree(keys.tree, num_leaves)
        # Off-chip state (attacker-reachable).
        self._ciphertext: Dict[int, bytes] = {}
        self._macs: Dict[int, bytes] = {}
        self._counter_lines: Dict[int, _CounterLine] = {}
        # On-chip state (attacker-unreachable).
        self._shared_counter = 1
        self._read_only_regions: Dict[int, bool] = {}
        # Statistics for the examples.
        self.verified_reads = 0
        self.detected_attacks = 0

    # -- Address helpers ----------------------------------------------------------

    def _block_index(self, address: int) -> int:
        if address % constants.BLOCK_SIZE:
            raise ValueError("address must be block aligned")
        if not 0 <= address < self.size_bytes:
            raise ValueError("address out of protected range")
        return address // constants.BLOCK_SIZE

    def _region_of(self, address: int) -> int:
        return address // self.region_size

    def _counter_line_of(self, block: int) -> Tuple[int, int]:
        return block // CTR_LINE_COVERAGE_BLOCKS, block % CTR_LINE_COVERAGE_BLOCKS

    def is_read_only(self, address: int) -> bool:
        return self._read_only_regions.get(self._region_of(address), False)

    @property
    def shared_counter(self) -> int:
        return self._shared_counter

    # -- Seeds ---------------------------------------------------------------------

    def _seed(self, address: int, read_only: bool) -> Seed:
        block = self._block_index(address)
        if read_only:
            # Fig. 3(b): shared counter as major, zero-padded minor.
            return Seed(major=self._shared_counter, minor=0,
                        address=address, shared=True)
        line_key, block_index = self._counter_line_of(block)
        line = self._counter_lines.setdefault(line_key, _CounterLine())
        return Seed(major=line.major, minor=line.minor(block_index),
                    address=address, shared=False)

    # -- Host-side API ----------------------------------------------------------------

    def host_copy(self, address: int, data: bytes, read_only: bool = True) -> None:
        """CUDA memcpy H2D: encrypt and store; optionally mark the
        covered regions read-only (context-initialisation copies)."""
        if len(data) % constants.BLOCK_SIZE:
            raise ValueError("copy length must be a multiple of the block size")
        for offset in range(0, len(data), constants.BLOCK_SIZE):
            addr = address + offset
            region = self._region_of(addr)
            if not read_only and self._read_only_regions.get(region, False):
                # A writable copy over a read-only region: transition it
                # first so untouched blocks stay decryptable.
                self._transition_region(region)
            self._read_only_regions[region] = read_only
        for offset in range(0, len(data), constants.BLOCK_SIZE):
            addr = address + offset
            self._store_block(addr, data[offset : offset + constants.BLOCK_SIZE],
                              read_only=read_only)

    def input_read_only_reset(self, address: int, size: int) -> int:
        """The Fig. 9 API: re-arm [address, address+size) as read-only
        and raise the shared counter above every major counter in the
        range.  Returns the new shared-counter value."""
        first_block = self._block_index(address)
        last_block = self._block_index(address + size - constants.BLOCK_SIZE)
        first_line = first_block // CTR_LINE_COVERAGE_BLOCKS
        last_line = last_block // CTR_LINE_COVERAGE_BLOCKS
        max_major = max(
            (self._counter_lines[k].major
             for k in range(first_line, last_line + 1)
             if k in self._counter_lines),
            default=0,
        )
        old_shared = self._shared_counter
        self._shared_counter = max(self._shared_counter, max_major) + 1
        for addr in range(address, address + size, self.region_size):
            self._read_only_regions[self._region_of(addr)] = True
        # Raising the register invalidates the pads of every block still
        # encrypted under the old shared value; the paper's remedy (b):
        # re-encrypt the affected read-only regions under the new value.
        self._reencrypt_read_only(old_shared)
        return self._shared_counter

    def _reencrypt_read_only(self, old_shared: int) -> None:
        for block, ciphertext in list(self._ciphertext.items()):
            addr = block * constants.BLOCK_SIZE
            if not self.is_read_only(addr):
                continue
            old_seed = Seed(major=old_shared, minor=0, address=addr, shared=True)
            plaintext = self._enc.decrypt(ciphertext, old_seed)
            new_seed = Seed(major=self._shared_counter, minor=0,
                            address=addr, shared=True)
            new_ct = self._enc.encrypt(plaintext, new_seed)
            self._ciphertext[block] = new_ct
            self._macs[block] = self._mac.block_mac(new_ct, addr,
                                                    new_seed.major, new_seed.minor)

    # -- Kernel-side data path ------------------------------------------------------------

    def write(self, address: int, data: bytes) -> None:
        """A kernel store reaching memory (an LLC write back)."""
        if len(data) != constants.BLOCK_SIZE:
            raise ValueError("writes are one block")
        region = self._region_of(address)
        if self._read_only_regions.get(region, False):
            # Read-only -> not-read-only transition (Fig. 8): propagate
            # the shared counter into the region's per-block majors and
            # re-encrypt the region under them.
            self._transition_region(region)
        self._store_block(address, data, read_only=False, bump=True)

    def read(self, address: int) -> bytes:
        """A verified read: decrypt, check the MAC and (for writable
        data) the BMT path of the counters."""
        block = self._block_index(address)
        ciphertext = self._ciphertext.get(block)
        if ciphertext is None:
            raise KeyError(f"no data at address {address:#x}")
        read_only = self.is_read_only(address)
        seed = self._seed(address, read_only)
        expected_mac = self._macs.get(block)
        ok = expected_mac is not None and self._mac.verify_block(
            ciphertext, address, seed.major, seed.minor, expected_mac
        )
        if not ok:
            self.detected_attacks += 1
            raise TamperError(f"MAC mismatch at address {address:#x}")
        if not read_only:
            line_key, _ = self._counter_line_of(block)
            line = self._counter_lines.setdefault(line_key, _CounterLine())
            try:
                self._bmt.verify_leaf(line_key, line.serialize())
            except ReplayAttackError:
                self.detected_attacks += 1
                raise
        self.verified_reads += 1
        return self._enc.decrypt(ciphertext, seed)

    # -- Attack surface (physical access to GDDR) ---------------------------------------

    def raw_block(self, address: int) -> Tuple[bytes, bytes]:
        """Attacker: snapshot a block's (ciphertext, MAC)."""
        block = self._block_index(address)
        return self._ciphertext[block], self._macs[block]

    def raw_overwrite(self, address: int, ciphertext: bytes,
                      mac: Optional[bytes] = None) -> None:
        """Attacker: overwrite off-chip ciphertext (and optionally the
        stored MAC) — a tampering or replay attempt."""
        block = self._block_index(address)
        self._ciphertext[block] = bytes(ciphertext)
        if mac is not None:
            self._macs[block] = bytes(mac)

    def raw_counter_snapshot(self, address: int) -> Tuple[int, bytes]:
        """Attacker: snapshot the counter line covering an address."""
        block = self._block_index(address)
        line_key, _ = self._counter_line_of(block)
        line = self._counter_lines.setdefault(line_key, _CounterLine())
        import copy
        return line_key, copy.deepcopy(line)

    def raw_counter_restore(self, line_key: int, snapshot) -> None:
        """Attacker: replay a stale counter line in off-chip memory
        (the BMT leaves are *not* updated — the attacker cannot touch
        the on-chip root)."""
        import copy
        self._counter_lines[line_key] = copy.deepcopy(snapshot)

    # -- Internals -------------------------------------------------------------------------

    def _store_block(self, address: int, data: bytes, read_only: bool,
                     bump: bool = False) -> None:
        block = self._block_index(address)
        if bump:
            line_key, block_index = self._counter_line_of(block)
            line = self._counter_lines.setdefault(line_key, _CounterLine())
            line.bump(block_index)
            self._bmt.update_leaf(line_key, line.serialize())
        seed = self._seed(address, read_only)
        ciphertext = self._enc.encrypt(data, seed)
        self._ciphertext[block] = ciphertext
        self._macs[block] = self._mac.block_mac(ciphertext, address,
                                                seed.major, seed.minor)
        if not read_only and not bump:
            # Host copy into writable space: fold into the BMT.
            line_key, _ = self._counter_line_of(block)
            line = self._counter_lines.setdefault(line_key, _CounterLine())
            self._bmt.update_leaf(line_key, line.serialize())

    def _transition_region(self, region: int) -> None:
        self._read_only_regions[region] = False
        first_addr = region * self.region_size
        for addr in range(first_addr, first_addr + self.region_size,
                          constants.BLOCK_SIZE):
            block = addr // constants.BLOCK_SIZE
            ciphertext = self._ciphertext.get(block)
            line_key, _ = self._counter_line_of(block)
            line = self._counter_lines.setdefault(line_key, _CounterLine())
            if line.major < self._shared_counter:
                line.major = self._shared_counter
                line.minors = None
            if ciphertext is None:
                continue
            # Re-encrypt under the propagated per-block counters.
            old_seed = Seed(major=self._shared_counter, minor=0,
                            address=addr, shared=True)
            plaintext = self._enc.decrypt(ciphertext, old_seed)
            new_seed = self._seed(addr, read_only=False)
            new_ct = self._enc.encrypt(plaintext, new_seed)
            self._ciphertext[block] = new_ct
            self._macs[block] = self._mac.block_mac(new_ct, addr,
                                                    new_seed.major, new_seed.minor)
        # The region is writable now: its counter lines join the BMT.
        first_block = first_addr // constants.BLOCK_SIZE
        lines = max(1, self.region_size // (CTR_LINE_COVERAGE_BLOCKS * constants.BLOCK_SIZE))
        first_line = first_block // CTR_LINE_COVERAGE_BLOCKS
        for line_key in range(first_line, first_line + lines):
            line = self._counter_lines.setdefault(line_key, _CounterLine())
            self._bmt.update_leaf(line_key, line.serialize())
