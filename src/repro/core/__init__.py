"""The paper's contribution: adaptive secure-memory support for GPUs."""

from repro.core.api import Allocation, SecureGPUContext
from repro.core.functional import SecureMemoryDevice
from repro.core.mee import DRAMRequest, MEEResult, MemoryEncryptionEngine, TruthProvider
from repro.core.readonly import ReadOnlyDetector
from repro.core.schemes import (
    FIG12_SCHEMES,
    FIG13_SCHEMES,
    FIG14_SCHEMES,
    SCHEME_DESCRIPTIONS,
    all_schemes,
    describe,
)
from repro.core.streaming import AccessTracker, StreamingDetector, Verdict
from repro.core.victim import VictimController

__all__ = [
    "Allocation",
    "SecureGPUContext",
    "SecureMemoryDevice",
    "DRAMRequest",
    "MEEResult",
    "MemoryEncryptionEngine",
    "TruthProvider",
    "ReadOnlyDetector",
    "FIG12_SCHEMES",
    "FIG13_SCHEMES",
    "FIG14_SCHEMES",
    "SCHEME_DESCRIPTIONS",
    "all_schemes",
    "describe",
    "AccessTracker",
    "StreamingDetector",
    "Verdict",
    "VictimController",
]
