"""Configuration dataclasses for the GPU, metadata caches and schemes.

Defaults reproduce the paper's baseline (Tables V, VI and IX).  Every
knob the evaluation sweeps — predictor sizes, MAT count, MAC
granularities, victim-cache threshold — is a field here so experiments
are pure data.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.common import constants
from repro.common.types import Scheme


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a sectored, set-associative cache."""

    size_bytes: int
    block_size: int = constants.BLOCK_SIZE
    ways: int = constants.MDC_WAYS
    sector_size: int = constants.SECTOR_SIZE
    mshr_entries: int = constants.MDC_MSHRS
    #: Requests an MSHR entry can merge before stalling new ones.
    mshr_merge: int = 16
    write_allocate: bool = True

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        return max(1, self.num_blocks // self.ways)

    @property
    def sectors_per_block(self) -> int:
        return self.block_size // self.sector_size


@dataclass(frozen=True)
class MDCConfig:
    """Metadata cache organisation (Table VI): one each for counters,
    MACs and BMT nodes, per memory partition."""

    counter: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=constants.MDC_SIZE)
    )
    mac: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=constants.MDC_SIZE)
    )
    bmt: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=constants.MDC_SIZE)
    )


@dataclass(frozen=True)
class DetectorConfig:
    """Sizing of the read-only and streaming detectors (Table IX)."""

    readonly_entries: int = constants.READONLY_PREDICTOR_ENTRIES
    readonly_region_size: int = constants.READONLY_REGION_SIZE
    stream_entries: int = constants.STREAM_PREDICTOR_ENTRIES
    stream_chunk_size: int = constants.STREAM_CHUNK_SIZE
    num_trackers: int = constants.NUM_ACCESS_TRACKERS
    monitor_accesses: int = constants.MAT_MONITOR_ACCESSES
    timeout_cycles: int = constants.MAT_TIMEOUT_CYCLES
    #: ``SHM_upper_bound``: no capacity limits, oracle-initialised.
    unlimited: bool = False

    @property
    def blocks_per_chunk(self) -> int:
        return self.stream_chunk_size // constants.BLOCK_SIZE

    def tracker_storage_bits(self) -> int:
        """Bits per memory access tracker.

        20-bit chunk tag + 1-bit write flag + 32 1-bit access counters
        + 5-bit access counter + 13-bit timeout counter = 71 bits
        (Section V-A).
        """
        tag_bits = 20
        write_flag = 1
        counters = self.blocks_per_chunk
        access_counter = 5
        timeout_counter = 13
        return tag_bits + write_flag + counters + access_counter + timeout_counter

    def partition_storage_bits(self) -> int:
        """Total predictor+tracker storage per memory partition."""
        return (
            self.readonly_entries
            + self.stream_entries
            + self.num_trackers * self.tracker_storage_bits()
        )


@dataclass(frozen=True)
class GPUConfig:
    """Baseline GPU (Table V) plus DRAM timing."""

    num_sms: int = 30
    num_partitions: int = constants.NUM_PARTITIONS
    l2_banks_per_partition: int = constants.L2_BANKS_PER_PARTITION
    l2_bank_size: int = constants.L2_BANK_SIZE
    l2_ways: int = 16
    l2_mshr_entries: int = 192
    l2_mshr_merge: int = 16
    dram_bytes_per_cycle: float = constants.DRAM_BYTES_PER_CYCLE
    dram_latency: int = constants.DRAM_LATENCY
    #: Fixed per-request channel occupancy (row activation, command
    #: bus); penalises many small transfers over few large ones.
    dram_request_overhead: float = 8.0
    #: Extra occupancy when the bus switches between reads and writes.
    dram_turnaround: float = 12.0
    #: Channel service discipline, by :data:`repro.memory.sched.
    #: SCHEDULERS` name: "fifo" (the calibrated baseline),
    #: "critical_first" (defer MAC/BMT writes behind demand traffic)
    #: or "banked" (per-bank open-row model) — sweepable per cell.
    dram_scheduler: str = "fifo"
    #: Banks per channel ("banked" scheduler).
    dram_num_banks: int = 16
    #: Row-buffer size in bytes ("banked" scheduler).
    dram_row_bytes: int = 2048
    #: Extra occupancy of a row miss ("banked" scheduler).
    dram_row_miss_penalty: float = 20.0
    #: Deferred-write buffer entries ("critical_first" scheduler).
    dram_write_buffer: int = 16
    hash_latency: int = constants.HASH_LATENCY
    #: Maximum outstanding off-chip requests the SM frontend sustains
    #: (aggregate memory-level parallelism across all SMs; 24 L2 banks
    #: x 192 MSHRs with merging supports thousands in flight).
    max_inflight_requests: int = 3072
    interleave_bytes: int = 256

    @property
    def total_l2_bytes(self) -> int:
        return self.num_partitions * self.l2_banks_per_partition * self.l2_bank_size


@dataclass(frozen=True)
class SchemeConfig:
    """Full description of one secure-memory design under evaluation.

    The feature flags decompose Table VIII's designs, so every scheme is
    a particular combination of: metadata address construction (local
    vs physical), sectored counter organisation, common counters,
    read-only/shared-counter optimisation, dual-granularity MACs and
    the L2 victim cache.
    """

    scheme: Scheme = Scheme.SHM
    #: Registry name of this composition.  Paper designs carry their
    #: enum value; a custom registration (see
    #: :func:`repro.core.policies.registry.register_scheme`) carries
    #: its registered name while ``scheme`` holds the base design it
    #: rides on.  Empty when constructed directly.
    name: str = ""
    #: Construct metadata from partition-local addresses (PSSM) rather
    #: than physical addresses (Naive / Common_ctr).
    local_metadata: bool = True
    #: Pack counters so one fetch covers sectored accesses (PSSM).
    sectored_counters: bool = True
    #: Common-counter compression of encryption counters [17].
    common_counters: bool = False
    #: Shared counter + BMT exclusion for read-only regions (this paper).
    readonly_optimization: bool = False
    #: Dual-granularity MACs with the streaming detector (this paper).
    dual_granularity_mac: bool = False
    #: Use the L2 as a victim cache for metadata when it thrashes.
    l2_victim_cache: bool = False
    #: Unlimited, profile-initialised detectors (SHM_upper_bound).
    oracle_detectors: bool = False
    #: MAC bytes per cache line (8 default; 4 = PSSM truncation).
    mac_size: int = constants.MAC_SIZE
    #: Victim-cache enable threshold on the sampled L2 miss rate.
    victim_missrate_threshold: float = 0.90
    #: Remedy for dual-granularity MAC aliasing conflicts: "recheck"
    #: (check the other MAC on failure — the paper's choice) or
    #: "update_both" (always maintain both MACs).
    mac_conflict_policy: str = "recheck"
    #: Integrity-tree implementation: "bmt" (arity-16, lazy writes —
    #: the paper's evaluation) or "counter_tree" (SGX-style arity-8,
    #: eager write path).  The adaptive schemes work with either.
    integrity_tree: str = "bmt"
    #: Learned policy layer (:mod:`repro.core.policies.learned`): ""
    #: (the paper's fixed heuristics), "logit" (online logistic
    #: regression over the decision ledger's feature vectors) or
    #: "bandit" (per-region epsilon-greedy arm selection over
    #: protection compositions).  Requires ``readonly_optimization``
    #: and ``dual_granularity_mac`` — the learned layer drives the
    #: adaptive machinery, it does not add new machinery.
    learned_policy: str = ""
    detectors: DetectorConfig = field(default_factory=DetectorConfig)

    @property
    def is_secure(self) -> bool:
        return self.scheme is not Scheme.UNPROTECTED

    @property
    def label(self) -> str:
        """Presentation name: the registry name when set, else the
        base design's Table VIII value."""
        return self.name or self.scheme.value


def scheme_config(scheme, **overrides) -> SchemeConfig:
    """Build the canonical :class:`SchemeConfig` for a registered
    design.

    ``scheme`` is a :class:`Scheme` member (the Table VIII designs) or
    a registry name string — including custom compositions added via
    :func:`repro.core.policies.registry.register_scheme`.  The flag
    table itself lives in the scheme registry; this shim keeps the
    historical ``common``-layer entry point (the import is deferred to
    avoid a ``common`` -> ``core`` module cycle).
    """
    from repro.core.policies.registry import build_scheme_config

    return build_scheme_config(scheme, **overrides)


#: Recognised execution cores (``SimConfig.core``).
CORE_EVENT = "event"
CORE_LEGACY = "legacy"
VALID_CORES = (CORE_EVENT, CORE_LEGACY)


def _default_core() -> str:
    """``REPRO_CORE`` flips whole processes (e.g. a CI pytest leg)
    onto the other core without touching any call site."""
    return os.environ.get("REPRO_CORE", CORE_EVENT)


@dataclass(frozen=True)
class SimConfig:
    """Everything one simulation run needs."""

    gpu: GPUConfig = field(default_factory=GPUConfig)
    mdc: MDCConfig = field(default_factory=MDCConfig)
    scheme: SchemeConfig = field(default_factory=lambda: scheme_config(Scheme.SHM))
    #: Execution core: ``"event"`` (batched, idle-cycle-skipping — the
    #: default) or ``"legacy"`` (the per-access loop).  The two are
    #: bit-identical; the knob exists as a transition escape hatch and
    #: so CI can prove the identity by running the golden oracle on
    #: both.  Per-access observed runs always take the legacy loop —
    #: the event core is for unhooked simulation speed — but a
    #: decision ledger (:mod:`repro.obs.decisions`) taps at decision
    #: granularity and does *not* force the fallback.
    core: str = field(default_factory=_default_core)

    def with_scheme(self, scheme, **overrides) -> "SimConfig":
        """``scheme`` accepts a :class:`Scheme` or a registry name."""
        return replace(self, scheme=scheme_config(scheme, **overrides))
