"""A fixed-size bit vector used by the read-only and streaming predictors.

The predictors of the paper are index-only (no tags), so distinct
regions/chunks may alias onto the same bit.  The class therefore exposes
the *index* mapping explicitly so callers can reason about aliasing.
"""

from __future__ import annotations


class BitVector:
    """Fixed-length vector of bits with modulo indexing.

    Parameters
    ----------
    n_entries:
        Number of 1-bit entries.  Must be a positive power of two so the
        index can be formed by masking address bits, as hardware would.
    initial:
        Initial value of every bit (the streaming predictor starts all
        ones; the read-only predictor starts all zeros).
    """

    def __init__(self, n_entries: int, initial: bool = False) -> None:
        if n_entries <= 0 or n_entries & (n_entries - 1):
            raise ValueError(f"n_entries must be a power of two, got {n_entries}")
        self.n_entries = n_entries
        self._mask = n_entries - 1
        self._default = bool(initial)
        self._bits = bytearray([1 if initial else 0]) * n_entries

    def index_of(self, entry_id: int) -> int:
        """Map an (unbounded) region/chunk id onto a vector index."""
        return entry_id & self._mask

    def aliases(self, id_a: int, id_b: int) -> bool:
        """True when two distinct ids share a predictor entry."""
        return id_a != id_b and self.index_of(id_a) == self.index_of(id_b)

    def get(self, entry_id: int) -> bool:
        return bool(self._bits[entry_id & self._mask])

    def set(self, entry_id: int, value: bool = True) -> None:
        self._bits[entry_id & self._mask] = 1 if value else 0

    def clear(self, entry_id: int) -> None:
        self._bits[entry_id & self._mask] = 0

    def fill(self, value: bool) -> None:
        byte = 1 if value else 0
        for i in range(self.n_entries):
            self._bits[i] = byte

    def reset(self) -> None:
        self.fill(self._default)

    def popcount(self) -> int:
        return sum(self._bits)

    @property
    def storage_bits(self) -> int:
        """Hardware cost of the vector (Table IX)."""
        return self.n_entries

    def __len__(self) -> int:
        return self.n_entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitVector(n_entries={self.n_entries}, set={self.popcount()})"
