"""Shared building blocks: constants, types, configs, address mapping."""

from repro.common.address import AddressMapper, LocalAddress
from repro.common.bitvec import BitVector
from repro.common.config import (
    CacheConfig,
    DetectorConfig,
    GPUConfig,
    MDCConfig,
    SchemeConfig,
    SimConfig,
    scheme_config,
)
from repro.common.types import (
    AccessType,
    IntegrityError,
    MemoryAccess,
    MemorySpace,
    Mechanism,
    Pattern,
    PredictionStats,
    ReplayAttackError,
    Scheme,
    TamperError,
    TrafficCounters,
    required_mechanisms,
)

__all__ = [
    "AddressMapper",
    "LocalAddress",
    "BitVector",
    "CacheConfig",
    "DetectorConfig",
    "GPUConfig",
    "MDCConfig",
    "SchemeConfig",
    "SimConfig",
    "scheme_config",
    "AccessType",
    "IntegrityError",
    "MemoryAccess",
    "MemorySpace",
    "Mechanism",
    "Pattern",
    "PredictionStats",
    "ReplayAttackError",
    "Scheme",
    "TamperError",
    "TrafficCounters",
    "required_mechanisms",
]
