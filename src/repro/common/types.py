"""Core enumerations and small value types used throughout the library."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MemorySpace(enum.Enum):
    """GPU memory spaces from the CUDA/OpenCL programming models (Table I)."""

    REGISTER = "register"
    LOCAL = "local"
    SHARED = "shared"
    GLOBAL = "global"
    CONSTANT = "constant"
    TEXTURE = "texture"
    INSTRUCTION = "instruction"


class Mechanism(enum.Flag):
    """The three security mechanisms of CPU TEEs (Section II-B)."""

    NONE = 0
    CONFIDENTIALITY = enum.auto()
    INTEGRITY = enum.auto()
    FRESHNESS = enum.auto()

    #: Shorthand for the full C+I+F protection.
    @classmethod
    def full(cls) -> "Mechanism":
        return cls.CONFIDENTIALITY | cls.INTEGRITY | cls.FRESHNESS


#: Whether a memory space lives on the GPU die (inside the TCB).
ON_CHIP_SPACES = frozenset(
    {MemorySpace.REGISTER, MemorySpace.SHARED}
)


def required_mechanisms(space: MemorySpace, read_only: bool = False) -> Mechanism:
    """Security mechanisms a memory space needs (paper Tables I and II).

    On-chip spaces need nothing: the GPU die is the trusted computing
    base.  Off-chip read-only data (constant memory, texture memory,
    read-only inputs) needs confidentiality and integrity but not
    freshness, because replaying a value that never changes is
    meaningless within a kernel (cross-kernel replay is handled by the
    shared counter).  All other off-chip data needs the full C+I+F.
    """
    if space in ON_CHIP_SPACES:
        return Mechanism.NONE
    if space in (MemorySpace.CONSTANT, MemorySpace.TEXTURE, MemorySpace.INSTRUCTION):
        return Mechanism.CONFIDENTIALITY | Mechanism.INTEGRITY
    if read_only:
        return Mechanism.CONFIDENTIALITY | Mechanism.INTEGRITY
    return Mechanism.full()


class AccessType(enum.Enum):
    """Type of an off-chip memory access as seen by a memory partition."""

    READ = "read"  # an L2 miss fill
    WRITE = "write"  # an L2 write back


class Pattern(enum.Enum):
    """Detected/predicted access pattern of a 4 KB chunk."""

    STREAM = "stream"
    RANDOM = "random"


class Scheme(enum.Enum):
    """Evaluated secure-memory designs (Table VIII)."""

    #: No secure memory at all (the normalisation baseline).
    UNPROTECTED = "unprotected"
    #: Secure memory with physically-addressed metadata (CPU-style).
    NAIVE = "naive"
    #: Common counters [17] over physically-addressed metadata.
    COMMON_CTR = "common_ctr"
    #: PSSM [33]: partition-local metadata, sectored counter blocks.
    PSSM = "pssm"
    #: PSSM + common counters.
    PSSM_CTR = "pssm_ctr"
    #: This paper: read-only + dual-granularity MAC on top of PSSM.
    SHM = "shm"
    #: SHM + common counters.
    SHM_CCTR = "shm_cctr"
    #: SHM using the L2 as a victim cache for metadata.
    SHM_VL2 = "shm_vl2"
    #: SHM with only the read-only/shared-counter optimisation
    #: (per-block MACs kept).
    SHM_READONLY = "shm_readonly"
    #: SHM with unlimited MATs/predictors initialised from profiling.
    SHM_UPPER_BOUND = "shm_upper_bound"


@dataclass(frozen=True)
class MemoryAccess:
    """One off-chip memory access (an L2 miss or write back).

    ``address`` is a *physical* device address; partition mapping turns
    it into (partition id, local address).  ``size`` is the transfer
    size in bytes (one sector for sectored fills, a full line for
    line-grain designs).
    """

    cycle: int
    address: int
    type: AccessType
    size: int
    space: MemorySpace = MemorySpace.GLOBAL
    warp_id: int = 0

    @property
    def is_write(self) -> bool:
        return self.type is AccessType.WRITE


@dataclass
class TrafficCounters:
    """Byte counters for every traffic class flowing to/from DRAM."""

    data_bytes: int = 0
    counter_bytes: int = 0
    mac_bytes: int = 0
    bmt_bytes: int = 0
    #: Extra data refetches caused by streaming-detector mispredictions
    #: (Tables III/IV scenarios that re-fetch whole chunks).
    misprediction_bytes: int = 0

    @property
    def metadata_bytes(self) -> int:
        """All bytes that are not demand data."""
        return (
            self.counter_bytes
            + self.mac_bytes
            + self.bmt_bytes
            + self.misprediction_bytes
        )

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.metadata_bytes

    def merge(self, other: "TrafficCounters") -> None:
        self.data_bytes += other.data_bytes
        self.counter_bytes += other.counter_bytes
        self.mac_bytes += other.mac_bytes
        self.bmt_bytes += other.bmt_bytes
        self.misprediction_bytes += other.misprediction_bytes

    def overhead_ratio(self) -> float:
        """Metadata bandwidth normalised to data bandwidth (Fig. 14)."""
        if self.data_bytes == 0:
            return 0.0
        return self.metadata_bytes / self.data_bytes


@dataclass
class PredictionStats:
    """Prediction accuracy bookkeeping for the two detectors.

    The breakdown categories mirror Figs. 10 and 11: correct
    predictions, mispredictions due to predictor initialisation,
    mispredictions due to runtime pattern changes (split by read-only
    vs not for the streaming detector) and mispredictions due to
    aliasing in the index-only bit vectors.
    """

    correct: int = 0
    mp_init: int = 0
    mp_runtime_read_only: int = 0
    mp_runtime_non_read_only: int = 0
    mp_aliasing: int = 0

    @property
    def total(self) -> int:
        return (
            self.correct
            + self.mp_init
            + self.mp_runtime_read_only
            + self.mp_runtime_non_read_only
            + self.mp_aliasing
        )

    @property
    def accuracy(self) -> float:
        total = self.total
        return self.correct / total if total else 1.0

    def merge(self, other: "PredictionStats") -> None:
        """Accumulate ``other``'s counts into this instance (per-MEE
        stats fold into one run- or suite-level aggregate)."""
        self.correct += other.correct
        self.mp_init += other.mp_init
        self.mp_runtime_read_only += other.mp_runtime_read_only
        self.mp_runtime_non_read_only += other.mp_runtime_non_read_only
        self.mp_aliasing += other.mp_aliasing

    def as_fractions(self) -> dict:
        total = self.total or 1
        return {
            "correct": self.correct / total,
            "mp_init": self.mp_init / total,
            "mp_runtime_read_only": self.mp_runtime_read_only / total,
            "mp_runtime_non_read_only": self.mp_runtime_non_read_only / total,
            "mp_aliasing": self.mp_aliasing / total,
        }


class IntegrityError(Exception):
    """Raised by the functional secure memory on a failed verification."""


class ReplayAttackError(IntegrityError):
    """Raised when stale-but-authentic data is detected (freshness)."""


class TamperError(IntegrityError):
    """Raised when a MAC mismatch indicates memory tampering."""
