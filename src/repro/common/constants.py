"""Architectural constants shared across the simulator.

Values follow the paper's baseline configuration (Tables V, VI and IX):
a Turing-like GPU with 12 GDDR memory partitions, 128 B cache lines
broken into 32 B sectors, 4 KB streaming chunks and 16 KB read-only
regions.
"""

# --- Data / cache geometry -------------------------------------------------

#: Cache line (memory block) size in bytes. MACs and counters are
#: maintained at this granularity.
BLOCK_SIZE = 128

#: Sector size in bytes. The L2 and the metadata caches are sectored:
#: a miss fetches one sector, not the whole line (PSSM's sectored design).
SECTOR_SIZE = 32

#: Sectors per cache line.
SECTORS_PER_BLOCK = BLOCK_SIZE // SECTOR_SIZE

# --- Security metadata geometry -------------------------------------------

#: MAC size in bytes (8 B per cache line; the paper's default).
MAC_SIZE = 8

#: Truncated MAC size used by PSSM's optional truncation (see the
#: birthday-attack discussion in Section III-C of the paper).
TRUNCATED_MAC_SIZE = 4

#: Number of block MACs packed into one metadata cache line.
MACS_PER_BLOCK = BLOCK_SIZE // MAC_SIZE

#: Split-counter layout: one 64-bit major counter plus 64 7-bit minor
#: counters packed per 128 B counter block (classic split-counter
#: organisation).  Each counter block therefore covers 64 data blocks
#: = 8 KB of data.
MAJOR_COUNTER_BITS = 64
MINOR_COUNTER_BITS = 7
BLOCKS_PER_COUNTER_BLOCK = 64
COUNTER_BLOCK_COVERAGE = BLOCKS_PER_COUNTER_BLOCK * BLOCK_SIZE

# --- Detector geometry (Table IX) ------------------------------------------

#: Read-only predictor granularity: 16 KB regions.
READONLY_REGION_SIZE = 16 * 1024

#: Read-only predictor entries per memory partition.
READONLY_PREDICTOR_ENTRIES = 1024

#: Streaming predictor granularity: 4 KB chunks.
STREAM_CHUNK_SIZE = 4 * 1024

#: Streaming predictor entries per memory partition.
STREAM_PREDICTOR_ENTRIES = 2048

#: Cache blocks per streaming chunk (4 KB / 128 B).
BLOCKS_PER_CHUNK = STREAM_CHUNK_SIZE // BLOCK_SIZE

#: Memory access trackers (MATs) per memory partition.
NUM_ACCESS_TRACKERS = 8

#: Accesses observed before a MAT declares a verdict (K in the paper).
MAT_MONITOR_ACCESSES = 32

#: MAT timeout in cycles: a random chunk must not pin a tracker forever.
MAT_TIMEOUT_CYCLES = 6000

# --- Memory system (Table V) -----------------------------------------------

#: Number of GDDR memory partitions.
NUM_PARTITIONS = 12

#: L2 banks per memory partition.
L2_BANKS_PER_PARTITION = 2

#: L2 bank capacity in bytes (128 KB per bank, 3 MB total).
L2_BANK_SIZE = 128 * 1024

#: Aggregate DRAM bandwidth in bytes per core cycle.  336 GB/s at a
#: 1506 MHz core clock is ~223 B/cycle across 12 partitions.
DRAM_BYTES_PER_CYCLE_TOTAL = 336e9 / 1506e6

#: Per-partition DRAM service rate (bytes per core cycle).
DRAM_BYTES_PER_CYCLE = DRAM_BYTES_PER_CYCLE_TOTAL / NUM_PARTITIONS

#: Flat DRAM access latency (cycles) added to every request on top of
#: queueing/service time.
DRAM_LATENCY = 220

#: Hash/MAC engine latency in cycles (Table VI).
HASH_LATENCY = 40

#: Protected device memory range (4 GB, Section V).
PROTECTED_MEMORY_BYTES = 4 * 1024 ** 3

# --- Metadata caches (Table VI) ---------------------------------------------

#: Capacity of each metadata cache (counter / MAC / BMT) per partition.
MDC_SIZE = 2 * 1024

#: Metadata cache associativity.
MDC_WAYS = 4

#: Metadata cache MSHR entries.
MDC_MSHRS = 256

# --- BMT --------------------------------------------------------------------

#: Arity of the Bonsai Merkle Tree: one 128 B node holds 16 8-B hashes.
BMT_ARITY = 16
