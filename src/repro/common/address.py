"""Address mapping: physical device addresses to partitions and local offsets.

GPU device memory is fine-grain interleaved across memory partitions.
PSSM's key observation (inherited by SHM) is that constructing security
metadata from *physical* addresses creates redundant metadata across
partitions, whereas constructing it from the *partition-local* address —
the offset within a partition after the interleaving map — removes that
redundancy.  This module implements both mappings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common import constants


@dataclass(frozen=True)
class LocalAddress:
    """A physical address after partition mapping."""

    partition: int
    offset: int


class AddressMapper:
    """Interleaves physical addresses across ``num_partitions``.

    Parameters
    ----------
    num_partitions:
        Number of GDDR memory partitions (12 in the baseline).
    interleave_bytes:
        Interleaving granularity.  256 B (two cache lines) matches
        common GPU memory mappings.
    """

    def __init__(
        self,
        num_partitions: int = constants.NUM_PARTITIONS,
        interleave_bytes: int = 256,
    ) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if interleave_bytes <= 0 or interleave_bytes & (interleave_bytes - 1):
            raise ValueError("interleave_bytes must be a power of two")
        if interleave_bytes < constants.BLOCK_SIZE:
            raise ValueError(
                "interleave granularity must be at least one cache line"
            )
        self.num_partitions = num_partitions
        self.interleave_bytes = interleave_bytes
        # Precomputed stride parameters: interleave_bytes is a power of
        # two, so the chunk split is a shift + mask instead of divmod.
        self._ilv_shift = interleave_bytes.bit_length() - 1
        self._ilv_mask = interleave_bytes - 1
        # Memo table for the hot translation.  Trace replay revisits the
        # same physical addresses constantly (every L2 access and every
        # metadata route goes through here); the mapping is pure, so the
        # first computation per address is also the last.
        self._local_memo: Dict[int, LocalAddress] = {}

    def to_local(self, physical: int) -> LocalAddress:
        """Map a physical address to (partition, local offset).

        The interleave-chunk index selects the partition round-robin;
        the local offset densely packs that partition's chunks so that
        consecutive chunks owned by a partition are adjacent in its
        local address space.
        """
        local = self._local_memo.get(physical)
        if local is not None:
            return local
        if physical < 0:
            raise ValueError("physical address must be non-negative")
        chunk = physical >> self._ilv_shift
        within = physical & self._ilv_mask
        partition = chunk % self.num_partitions
        local_chunk = chunk // self.num_partitions
        local = LocalAddress(
            partition, local_chunk * self.interleave_bytes + within
        )
        self._local_memo[physical] = local
        return local

    def to_physical(self, local: LocalAddress) -> int:
        """Inverse of :meth:`to_local` (used by tests and the scrubber)."""
        local_chunk, within = divmod(local.offset, self.interleave_bytes)
        chunk = local_chunk * self.num_partitions + local.partition
        return chunk * self.interleave_bytes + within

    def partition_of(self, physical: int) -> int:
        return (physical >> self._ilv_shift) % self.num_partitions

    def local_span(self, start: int, size: int, partition: int) -> tuple:
        """Partition-local byte range [lo, hi) covered by the physical
        range [start, start+size).

        Round-robin interleaving maps any contiguous physical range to
        one contiguous local range per partition, so host copies and
        the reset API can mark regions with simple spans.
        """
        if size <= 0:
            return (0, 0)
        c0 = start // self.interleave_bytes
        c1 = -(-(start + size) // self.interleave_bytes)  # ceil division
        first = c0 + ((partition - c0) % self.num_partitions)
        if first >= c1:
            return (0, 0)
        count = (c1 - 1 - first) // self.num_partitions + 1
        lo = (first // self.num_partitions) * self.interleave_bytes
        hi = lo + count * self.interleave_bytes
        return (lo, hi)

    # -- Granularity helpers -------------------------------------------------

    @staticmethod
    def block_id(address: int) -> int:
        """128 B cache-line id of an address (either address space)."""
        return address // constants.BLOCK_SIZE

    @staticmethod
    def sector_id(address: int) -> int:
        return address // constants.SECTOR_SIZE

    @staticmethod
    def region_id(local_offset: int, region_size: int = constants.READONLY_REGION_SIZE) -> int:
        """Read-only-detector region id of a local address (16 KB default)."""
        return local_offset // region_size

    @staticmethod
    def chunk_id(local_offset: int, chunk_size: int = constants.STREAM_CHUNK_SIZE) -> int:
        """Streaming-detector chunk id of a local address (4 KB default)."""
        return local_offset // chunk_size

    @staticmethod
    def block_align(address: int) -> int:
        return address - (address % constants.BLOCK_SIZE)

    @staticmethod
    def chunk_align(address: int, chunk_size: int = constants.STREAM_CHUNK_SIZE) -> int:
        return address - (address % chunk_size)

    @staticmethod
    def block_offset_in_chunk(address: int) -> int:
        """Index of a block within its 4 KB chunk (0..31)."""
        return (address % constants.STREAM_CHUNK_SIZE) // constants.BLOCK_SIZE
