"""Experiment orchestration: calibration, profiling, cached runs.

For each workload the runner performs, once:

1. a *recording* run (unprotected scheme) that captures the MEE-visible
   stream and the unprotected data traffic;
2. *calibration*: the frontend issue gap is set so the unprotected run
   hits the workload's published bandwidth utilisation (Table VII);
3. a *baseline* run at the calibrated gap (the Fig. 12 normaliser);
4. *profiling*: the recorded stream becomes the ground truth
   (:class:`repro.sim.profiling.TraceProfile`) for detector-accuracy
   stats and the SHM_upper_bound oracle.

Scheme runs are cached by (workload, scheme) so that every figure's
bench reuses, rather than re-simulates, shared configurations.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.core.policies.registry import scheme_entry
from repro.obs.decisions import NULL_LEDGER
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.perf.hostprof import NULL_PROFILER, HostProfiler
from repro.sim.gpu import GPUSimulator
from repro.sim.profiling import TraceProfile
from repro.sim.stats import RunResult
from repro.workloads.base import Workload
from repro.workloads.suite import build as build_workload

#: Compute floor between issued accesses (cycles); the suite is memory
#: bound, so pacing comes from the calibrated MLP window instead.
GAP_EPSILON = 0.001

#: Bounds and starting point of the MLP calibration search.
MIN_WINDOW = 16
MAX_WINDOW = 32768
INITIAL_WINDOW = 512
CALIBRATION_ROUNDS = 4
CALIBRATION_TOLERANCE = 0.06


@dataclass
class Calibration:
    """Per-workload calibration artefacts."""

    window: int
    profile: TraceProfile
    baseline: RunResult


class Runner:
    """Runs (workload x scheme) simulations with caching."""

    def __init__(self, config: Optional[SimConfig] = None, scale: float = 1.0,
                 observer: Optional[Observer] = None,
                 profiler: Optional[HostProfiler] = None,
                 ledger=None) -> None:
        self.config = config or SimConfig()
        self.scale = scale
        self.observer = observer if observer is not None else NULL_OBSERVER
        #: Host-time profiler threaded into scheme runs (calibration
        #: runs stay unprofiled: only protected-run host time is the
        #: optimisation target).
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: Decision ledger threaded into scheme runs.  A plain settable
        #: attribute (read per run()) so campaign cells can attach a
        #: fresh ledger per cell and restore NULL_LEDGER after.
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self._workloads: Dict[str, Workload] = {}
        self._calibrations: Dict[str, Calibration] = {}
        # Keyed by (workload, scheme-registry name).
        self._results: Dict[Tuple[str, str], RunResult] = {}

    # ------------------------------------------------------------------

    def workload(self, name: str) -> Workload:
        if name not in self._workloads:
            self._workloads[name] = build_workload(name, self.scale)
        return self._workloads[name]

    def add_workload(self, workload: Workload) -> None:
        """Register a custom (non-suite) workload."""
        self._workloads[workload.name] = workload

    def calibration(self, name: str) -> Calibration:
        if name not in self._calibrations:
            self._calibrations[name] = self._calibrate(self.workload(name))
        return self._calibrations[name]

    def profile(self, name: str) -> TraceProfile:
        return self.calibration(name).profile

    def baseline(self, name: str) -> RunResult:
        """The calibrated unprotected run (a defensive copy: callers
        may mutate their result without corrupting the cache)."""
        return copy.deepcopy(self.calibration(name).baseline)

    def run(self, name: str, scheme, **overrides) -> RunResult:
        """Simulate one scheme on one workload (cached when no
        overrides are given and no observer is attached).

        ``scheme`` is a :class:`Scheme` member or a scheme-registry
        name (including custom compositions registered via
        :func:`repro.core.policies.register_scheme`).

        Every return is a defensive deep copy of the cached entry, so
        one figure's post-processing cannot corrupt another figure's
        cached (workload, scheme) result.
        """
        entry = scheme_entry(scheme)
        cacheable = (not overrides and not self.observer.enabled
                     and not self.profiler.enabled
                     and not self.ledger.enabled)
        key = (name, entry.name)
        if cacheable and key in self._results:
            return copy.deepcopy(self._results[key])
        if cacheable and entry.name == Scheme.UNPROTECTED.value:
            return self.baseline(name)
        calib = self.calibration(name)
        config = self.config.with_scheme(entry.name, **overrides)
        if self.ledger.enabled:
            self.ledger.begin_run(f"{name}/{entry.name}")
        sim = GPUSimulator(config, truth=calib.profile,
                           observer=self.observer,
                           profiler=self.profiler,
                           ledger=self.ledger)
        result = sim.run(self.workload(name), gap=GAP_EPSILON,
                         max_inflight=calib.window)
        if cacheable:
            self._results[key] = copy.deepcopy(result)
        return result

    def clear_results(self) -> None:
        """Drop cached (workload, scheme) runs while keeping the
        calibration artefacts — benchmarking wants every run
        re-simulated, not served as a deep copy."""
        self._results.clear()

    def normalized_ipc(self, name: str, scheme: Scheme) -> float:
        return self.run(name, scheme).normalized_ipc(self.baseline(name))

    def overhead(self, name: str, scheme: Scheme) -> float:
        return self.run(name, scheme).overhead(self.baseline(name))

    # ------------------------------------------------------------------

    def _calibrate(self, workload: Workload) -> Calibration:
        """Find the MLP window at which the unprotected run hits the
        workload's published bandwidth utilisation (Table VII).

        Below saturation utilisation grows ~linearly with the window
        (Little's law), so a proportional update converges in a few
        rounds.  The final round records the MEE-visible stream for
        the ground-truth profile and doubles as the baseline run.
        """
        target = workload.bandwidth_utilization
        recording_config = self.config.with_scheme(Scheme.UNPROTECTED)

        observe = self.observer.enabled
        window = INITIAL_WINDOW
        result = None
        for round_idx in range(CALIBRATION_ROUNDS):
            sim = GPUSimulator(recording_config)
            result = sim.run(workload, gap=GAP_EPSILON, max_inflight=window)
            measured = result.dram_utilization
            if observe:
                self.observer.calibration_round(
                    workload.name, round_idx, window, measured, result.cycles
                )
            if measured <= 0:
                break
            error = abs(measured - target) / target
            if error <= CALIBRATION_TOLERANCE:
                break
            scaled = int(window * target / measured)
            scaled = max(MIN_WINDOW, min(MAX_WINDOW, scaled))
            if scaled == window:
                break
            window = scaled

        recorder = GPUSimulator(recording_config, record_stream=True)
        baseline = recorder.run(workload, gap=GAP_EPSILON, max_inflight=window)
        if observe:
            self.observer.calibration_round(
                workload.name, CALIBRATION_ROUNDS, window,
                baseline.dram_utilization, baseline.cycles
            )
        profile = TraceProfile(
            region_size=self.config.scheme.detectors.readonly_region_size,
            chunk_size=self.config.scheme.detectors.stream_chunk_size,
        ).ingest(recorder.streams)
        return Calibration(window=window, profile=profile, baseline=baseline)


_shared_runners: Dict[float, Runner] = {}


def shared_runner(scale: float = 1.0) -> Runner:
    """A process-wide runner so benchmarks share calibration and runs."""
    if scale not in _shared_runners:
        _shared_runners[scale] = Runner(scale=scale)
    return _shared_runners[scale]
