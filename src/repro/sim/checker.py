"""Functional replay: drive workload traces through real cryptography.

The performance simulator models metadata *traffic*; this checker
replays the same workload descriptions through the *functional* secure
memory (real AES/MAC/BMT), so the state machine the traffic model
assumes — read-only marking and transitions, shared-counter resets,
counter evolution across kernels — is exercised end to end at workload
scale.  Every read must decrypt and verify to the value last written.

It is deliberately timing-free and slow (pure-Python AES); use small
scales.  The payload written to each block is a deterministic function
of (address, version), so the checker needs no golden files.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from repro.common import constants
from repro.core.functional import SecureMemoryDevice
from repro.crypto.keys import KeyGenerator
from repro.workloads.base import Workload


def _payload(address: int, version: int) -> bytes:
    """Deterministic 128 B block content for (address, version)."""
    seed = hashlib.sha256(
        address.to_bytes(8, "little") + version.to_bytes(4, "little")
    ).digest()
    return (seed * ((constants.BLOCK_SIZE // len(seed)) + 1))[: constants.BLOCK_SIZE]


class FunctionalReplay:
    """Replays one workload through a :class:`SecureMemoryDevice`."""

    def __init__(self, workload: Workload, context_id: int = 0) -> None:
        self.workload = workload
        footprint = max(b.end for b in workload.buffers)
        size = -(-footprint // constants.READONLY_REGION_SIZE) \
            * constants.READONLY_REGION_SIZE
        keys = KeyGenerator().context_keys(context_id)
        self.device = SecureMemoryDevice(keys, size_bytes=size)
        #: block address -> write version (0 = host initialised).
        self._versions: Dict[int, int] = {}
        self.reads_verified = 0
        self.writes_applied = 0
        self.transitions_exercised = 0

    # ------------------------------------------------------------------

    def run(self, max_accesses_per_kernel: Optional[int] = None) -> "FunctionalReplay":
        """Replay host events and kernel accesses, verifying each read."""
        for event in self.workload.init_copies():
            self._host_copy(event.start, event.size, read_only=True)
        for kernel in self.workload.kernels:
            for event in kernel.host_events:
                if event.kind == "copy":
                    self._host_copy(event.start, event.size, read_only=True)
                elif event.kind == "readonly_reset":
                    self.device.input_read_only_reset(event.start, event.size)
                else:
                    raise ValueError(f"unknown host event: {event.kind}")
            accesses = kernel.accesses
            if max_accesses_per_kernel is not None:
                accesses = accesses[:max_accesses_per_kernel]
            for addr, is_write, _nsectors in accesses:
                block_addr = addr - addr % constants.BLOCK_SIZE
                if is_write:
                    self._write(block_addr)
                else:
                    self._read(block_addr)
        return self

    # ------------------------------------------------------------------

    def _host_copy(self, start: int, size: int, read_only: bool) -> None:
        for block_addr in range(start, start + size, constants.BLOCK_SIZE):
            if block_addr >= self.device.size_bytes:
                break
            self._versions[block_addr] = 0
        # Copy in region-sized strides to keep the functional device's
        # host_copy block loop bounded.
        step = 64 * constants.BLOCK_SIZE
        for offset in range(0, size, step):
            chunk = min(step, size - offset)
            payload = b"".join(
                _payload(start + offset + i, 0)
                for i in range(0, chunk, constants.BLOCK_SIZE)
            )
            self.device.host_copy(start + offset, payload, read_only=read_only)

    def _write(self, block_addr: int) -> None:
        was_read_only = self.device.is_read_only(block_addr)
        version = self._versions.get(block_addr, 0) + 1
        self._versions[block_addr] = version
        self.device.write(block_addr, _payload(block_addr, version))
        if was_read_only:
            self.transitions_exercised += 1
        self.writes_applied += 1

    def _read(self, block_addr: int) -> None:
        version = self._versions.get(block_addr)
        if version is None:
            # Never initialised (output buffer before first write):
            # nothing to verify against.
            return
        data = self.device.read(block_addr)
        expected = _payload(block_addr, version)
        if data != expected:
            raise AssertionError(
                f"functional replay mismatch at {block_addr:#x} "
                f"(version {version})"
            )
        self.reads_verified += 1
