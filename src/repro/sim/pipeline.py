"""The memory-request pipeline (the request layer).

One typed :class:`MemoryRequest` walks the lifecycle the paper
studies — issued → L2 → metadata (MEE) → DRAM → complete — through a
:class:`MemoryPipeline` that owns the L2 partitions, the per-partition
MEEs and the DRAM channels.  :class:`~repro.sim.gpu.GPUSimulator`
shrinks to wiring (construct the components, drive the frontend) plus
result assembly; the float plumbing that used to be hand-rolled across
``_access``/``_writeback``/``_schedule`` lives here, and observability
attaches through :class:`PipelineHooks` at the lifecycle transitions
instead of being inlined at each call site.
"""

from __future__ import annotations

import heapq
from collections import deque
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import CompletionWindow
    from repro.sim.stats import LatencyStats

from repro.common import constants
from repro.common.address import AddressMapper
from repro.common.config import SimConfig
from repro.common.types import TrafficCounters
from repro.core.mee import DRAMRequest, MEEResult, MemoryEncryptionEngine
from repro.memory.cache import Eviction
from repro.memory.dram import DRAMChannel
from repro.memory.l2 import SAMPLE_STRIDE, PartitionL2
from repro.perf.hostprof import NULL_PROFILER, HostProfiler
from repro.sim.stats import L2Stats

#: Completion latency of an L2 hit (core <-> L2 round trip).
L2_HIT_LATENCY = 90

#: DRAM-request kind -> the :class:`TrafficCounters` attribute that
#: accumulates its bytes.  :meth:`MemoryPipeline.schedule` refuses
#: kinds that are not registered here: an unknown kind used to be
#: silently booked as demand data, which corrupted every overhead
#: ratio derived from the traffic breakdown.
TRAFFIC_KIND_COUNTERS: Dict[str, str] = {
    "data": "data_bytes",
    "ctr": "counter_bytes",
    "mac": "mac_bytes",
    "bmt": "bmt_bytes",
    "mispred": "misprediction_bytes",
}


def register_traffic_kind(kind: str, counter_attr: str) -> None:
    """Register a custom DRAM-request kind.

    Schemes that emit new metadata kinds must map them to an existing
    :class:`TrafficCounters` attribute before the pipeline will
    schedule them (``schedule`` raises on unregistered kinds).
    """
    if counter_attr not in TrafficCounters.__dataclass_fields__:
        raise ValueError(
            f"unknown TrafficCounters attribute {counter_attr!r}"
        )
    TRAFFIC_KIND_COUNTERS[kind] = counter_attr


class Stage(Enum):
    """Lifecycle position of one memory request."""

    ISSUED = "issued"
    L2 = "l2"
    METADATA = "metadata"
    DRAM = "dram"
    COMPLETE = "complete"


class MemoryRequest:
    """One warp memory access moving through the pipeline.

    A ``__slots__`` class rather than a dataclass: one instance is
    created per simulated access, so instance-dict allocation is pure
    hot-path overhead.

    Fields beyond the constructor arguments:

    * ``stage`` — lifecycle position (:class:`Stage`);
    * ``partition`` — home partition (set once the address is mapped);
    * ``l2_miss`` — did the L2 lookup miss (any sector need a fetch)?
    * ``completion`` — completion cycle (valid once COMPLETE);
    * ``ctr_done`` — cycle the decrypt-critical counter fetch (if any)
      resolved;
    * ``fetch_sectors`` — sectors of the line that needed a DRAM fetch.
    """

    __slots__ = ("issue", "address", "is_write", "nsectors", "stage",
                 "partition", "l2_miss", "completion", "ctr_done",
                 "fetch_sectors")

    def __init__(self, issue: float, address: int, is_write: bool,
                 nsectors: int) -> None:
        self.issue = issue
        self.address = address
        self.is_write = is_write
        self.nsectors = nsectors
        self.stage = Stage.ISSUED
        self.partition = -1
        self.l2_miss = False
        self.completion = 0.0
        self.ctr_done = 0.0
        self.fetch_sectors: List[int] = _NO_SECTORS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryRequest(issue={self.issue}, address={self.address}, "
            f"is_write={self.is_write}, nsectors={self.nsectors}, "
            f"stage={self.stage}, completion={self.completion})"
        )


#: Shared empty fetch list for requests that never miss.  Treated as
#: immutable — the pipeline replaces it, never appends to it.
_NO_SECTORS: List[int] = []


class PipelineHooks:
    """No-op lifecycle hooks.  Subclass and attach to a pipeline to
    observe transitions; :class:`ObserverHooks` adapts them onto the
    :class:`repro.obs.observer.Observer` event vocabulary."""

    enabled = False

    def l2_checked(self, request: MemoryRequest) -> None:
        """A read finished its L2 lookup (``request.l2_miss`` set)."""

    def metadata_request(self, issue: float, dram_request: DRAMRequest,
                         done: float) -> None:
        """One MEE-generated transfer was placed on its channel."""

    def data_transfer(self, issue: float, partition: int, size: int,
                      is_write: bool) -> None:
        """A demand data transfer was placed on its channel."""

    def completed(self, request: MemoryRequest) -> None:
        """The request reached COMPLETE."""


class ObserverHooks(PipelineHooks):
    """Adapts lifecycle transitions to the observer event stream."""

    enabled = True

    def __init__(self, obs) -> None:
        self.obs = obs

    def l2_checked(self, request: MemoryRequest) -> None:
        self.obs.l2_access(request.issue, request.partition,
                           miss=request.l2_miss)

    def metadata_request(self, issue: float, dram_request: DRAMRequest,
                         done: float) -> None:
        self.obs.traffic(issue, dram_request.partition, dram_request.kind,
                         dram_request.size, dram_request.is_write)
        self.obs.mee_op(dram_request.partition, dram_request.kind,
                        dram_request.is_write, issue, done,
                        critical=dram_request.critical)

    def data_transfer(self, issue: float, partition: int, size: int,
                      is_write: bool) -> None:
        self.obs.traffic(issue, partition, "data", size, is_write)


class MemoryPipeline:
    """L2 → MEE → DRAM for one simulation instance.

    The pipeline owns the traffic/L2 accounting and the (optional)
    address-stream recording; the simulator owns workload sequencing
    and result assembly.
    """

    def __init__(
        self,
        config: SimConfig,
        mapper: AddressMapper,
        channels: List[DRAMChannel],
        l2: List[PartitionL2],
        mees: List[MemoryEncryptionEngine],
        hooks: Optional[PipelineHooks] = None,
        record_stream: bool = False,
        profiler: Optional[HostProfiler] = None,
    ) -> None:
        self.config = config
        self.mapper = mapper
        self.channels = channels
        self.l2 = l2
        self.mees = mees
        self.hooks = hooks if hooks is not None else PipelineHooks()
        self._observe = self.hooks.enabled
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._profile = self.profiler.enabled
        self.record_stream = record_stream
        self.streams: Dict[int, List[Tuple[int, bool, int]]] = {
            p: [] for p in range(config.gpu.num_partitions)
        }
        self.traffic = TrafficCounters()
        self.l2_stats = L2Stats()
        self.kernel_idx = 0
        self._hash_latency = config.gpu.hash_latency
        self._victim_mode = config.scheme.l2_victim_cache
        # Arm the MEEs' direct-emission fast path (metadata transfers
        # occupy their channel at emission time, bypassing the
        # DRAMRequest lists and the schedule() loop) — the MEE itself
        # refuses to arm when an observer/profiler/victim cache needs
        # the materialised request stream.
        self._direct_meta = False
        if mees:
            for mee in mees:
                mee.attach_direct(channels, self.traffic)
            self._direct_meta = mees[0]._direct
        #: Translate/classify memo of the batch core: access tuple
        #: ``(addr, is_write, nsectors)`` -> its precomputed route (see
        #: :meth:`translate_batch`).  Address mapping, bank selection
        #: and sector arithmetic are pure functions of the access and
        #: the (fixed) topology, so each distinct access is resolved
        #: once per pipeline.
        self._xlate: Dict[Tuple[int, bool, int], tuple] = {}

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, issue: float, addr: int, is_write: bool,
               nsectors: int) -> MemoryRequest:
        """Run one access through the full lifecycle; the returned
        request carries its completion cycle.

        When host profiling is on, ledger marks attribute the body to
        the L2 / METADATA / DRAM stages (write-backs self-attribute
        through their own marks); each mark costs one local-boolean
        branch when profiling is off.
        """
        profile = self._profile
        if profile:
            prof = self.profiler
        if self._direct_meta and self._observe:
            # Hooks were attached after construction: disarm direct
            # emission so the metadata_request stream they observe is
            # the complete materialised one.
            for mee in self.mees:
                mee.detach_direct()
            self._direct_meta = False
        request = MemoryRequest(issue, addr, is_write, nsectors)
        line_addr = addr - addr % constants.BLOCK_SIZE
        line_key = line_addr // constants.BLOCK_SIZE
        local = self.mapper.to_local(line_addr)
        partition = request.partition = local.partition
        bank = self.l2[partition].bank_for(line_key)
        first_sector = (addr % constants.BLOCK_SIZE) // constants.SECTOR_SIZE
        last_sector = min(first_sector + nsectors, constants.SECTORS_PER_BLOCK)

        self.l2_stats.accesses += 1
        request.stage = Stage.L2
        if is_write:
            # Stores allocate without fetching (full-sector writes).
            # They occupy a frontend slot briefly (store buffer); a
            # displaced dirty line's write-back backpressures them.
            completion = issue + L2_HIT_LATENCY
            if bank.cache.has_line(line_key):
                # Resident line: no eviction is possible, so the whole
                # sector loop collapses to one bulk mask update.
                bank.cache.access_range(
                    line_key, first_sector, last_sector,
                    is_write=True, fetch_on_miss=False,
                )
            else:
                # The line must be allocated; a displaced dirty line's
                # write-back can (in victim mode) reshape this very set
                # between sector accesses, so keep the sequential loop.
                for sector in range(first_sector, last_sector):
                    result = bank.cache.access(
                        line_key, sector, is_write=True, fetch_on_miss=False
                    )
                    if result.eviction is not None and result.eviction.dirty_sectors:
                        if profile:
                            prof.mark("l2")
                        wb_done = self.writeback(issue, result.eviction)
                        completion = max(completion, wb_done)
            if profile:
                prof.mark("l2")
            return self._complete(request, completion)

        completion = issue + L2_HIT_LATENCY
        merged_done, fetch_sectors, eviction = bank.access_data_range(
            line_key, first_sector, last_sector, issue
        )
        if merged_done > completion:
            completion = merged_done

        if fetch_sectors is not None:
            request.fetch_sectors = fetch_sectors
            request.l2_miss = True
        if self._observe:
            self.hooks.l2_checked(request)
        if profile:
            prof.mark("l2")
        if fetch_sectors is not None:
            self.l2_stats.misses += 1
            ctr_done = 0.0
            if self.mees:
                request.stage = Stage.METADATA
                if self._direct_meta:
                    ctr_done = self.mees[partition].on_read_miss_direct(
                        issue, line_addr, local.offset
                    )
                else:
                    mee_result = self.mees[partition].on_read_miss(
                        issue, line_addr, local.offset
                    )
                    ctr_done, _ = self.schedule(issue, mee_result)
                if ctr_done:
                    # Pad generation (AES) starts when the counter
                    # arrives; decryption cannot complete before it.
                    ctr_done += self.config.gpu.hash_latency
            request.ctr_done = ctr_done
            if profile:
                prof.mark("metadata")
                t_svc = prof.now()
            request.stage = Stage.DRAM
            size = len(fetch_sectors) * constants.SECTOR_SIZE
            data_done = self.channels[partition].service(
                issue, size, address=line_addr
            )
            if profile:
                prof.add_component("sched_data", prof.now() - t_svc)
            self.traffic.data_bytes += size
            if self._observe:
                self.hooks.data_transfer(issue, partition, size, False)
            done = max(data_done, ctr_done)
            for sector in fetch_sectors:
                bank.register_fill(line_key, sector, done, issue)
            completion = max(completion, done)
            if self.record_stream:
                self.streams[partition].append(
                    (local.offset, False, self.kernel_idx)
                )
            if profile:
                prof.mark("dram")

        if eviction is not None and eviction.dirty_sectors:
            self.writeback(issue, eviction)
        return self._complete(request, completion)

    def _complete(self, request: MemoryRequest,
                  completion: float) -> MemoryRequest:
        request.stage = Stage.COMPLETE
        request.completion = completion
        if self._observe:
            self.hooks.completed(request)
        return request

    # ------------------------------------------------------------------
    # Batch core (the event-driven execution path)
    # ------------------------------------------------------------------

    def translate_batch(self, accesses) -> list:
        """Translate + classify one kernel batch in a single pass.

        Each access tuple resolves to ``(is_write, line_addr,
        line_key, partition, local_offset, bank, cache, first, last,
        n, range_mask, sampled, lines, mshr)`` — the physical-to-local
        mapping, home L2 bank (resolved down to the bank's set dict and
        MSHR file, so the hot loop does no partition/bank/set
        indexing), the clamped sector range and its bitmask, and
        whether the line falls in a miss-rate-sampled set.  Distinct
        accesses are memoised in :attr:`_xlate`; repeated addresses
        (the common case in the suite's strided kernels) cost one dict
        probe.
        """
        memo = self._xlate
        out = []
        append = out.append
        miss = memo.get
        mapper = self.mapper
        ilv_shift = mapper._ilv_shift
        ilv_mask = mapper._ilv_mask
        ilv = mapper.interleave_bytes
        nparts = mapper.num_partitions
        l2 = self.l2
        block = constants.BLOCK_SIZE
        sector_size = constants.SECTOR_SIZE
        spb = constants.SECTORS_PER_BLOCK
        for acc in accesses:
            entry = miss(acc)
            if entry is None:
                addr, is_write, nsectors = acc
                line_addr = addr - addr % block
                line_key = line_addr // block
                # AddressMapper.to_local, inlined (skips its memo and
                # the LocalAddress wrapper — the translation memo above
                # already caches per distinct access).
                chunk = line_addr >> ilv_shift
                partition = chunk % nparts
                local_offset = ((chunk // nparts) * ilv
                                + (line_addr & ilv_mask))
                bank = l2[partition].bank_for(line_key)
                cache = bank.cache
                first = (addr % block) // sector_size
                last = first + nsectors
                if last > spb:
                    last = spb
                n = last - first
                set_idx = line_key % cache.num_sets
                entry = (is_write, line_addr, line_key, partition,
                         local_offset, bank, cache, first, last, n,
                         ((1 << n) - 1) << first if n > 0 else 0,
                         set_idx % SAMPLE_STRIDE == 0,
                         cache._sets[set_idx], bank.mshr)
                memo[acc] = entry
            append(entry)
        return out

    def run_batch(self, window: "CompletionWindow", accesses,
                  latency: "LatencyStats") -> None:
        """Run one kernel batch through the full lifecycle (the event
        core's fused loop).

        Semantically this is exactly ``for each access: window.issue()
        -> self.access(...) -> latency.record -> window.complete()``,
        with the window state, the L2 fast paths and the latency
        accumulators hoisted into locals; every float operation happens
        in the same order as the legacy per-access path, so results
        are bit-identical (the golden oracle runs on this core).  The
        read-miss block is inlined from :meth:`access` operation for
        operation; store allocation drops into :meth:`_store_alloc`,
        which mirrors it too.  Hooks are not consulted — the simulator routes observed
        runs through the legacy core, where the per-request
        :class:`PipelineHooks` stream is emitted unchanged.  Decision
        ledger taps (:mod:`repro.obs.decisions`) are the exception:
        they live inside the MEE's decision sites, fire on this fused
        path too, and therefore never force the fallback.
        """
        if not accesses:
            return
        profile = self._profile
        prof = self.profiler
        if profile:
            t0 = prof.now()
        translated = self.translate_batch(accesses)
        if profile:
            prof.add_component("translate", prof.now() - t0)
            prof.mark("issued")
            mark = prof.mark
        # Window state (the event queue), hoisted.
        heap = window.inflight
        cap = window.max_inflight
        gap = window.gap
        seq = window.seq
        stall_cycles = window.stall_cycles
        last_stall = window.last_stall
        last_completion = window.last_completion
        heappush = heapq.heappush
        heappop = heapq.heappop
        # Pipeline state, hoisted.
        hit_latency = L2_HIT_LATENCY
        store_alloc = self._store_alloc
        writeback = self.writeback
        schedule = self.schedule
        mees = self.mees
        channels = self.channels
        traffic = self.traffic
        l2_stats = self.l2_stats
        streams = self.streams
        record_stream = self.record_stream
        kernel_idx = self.kernel_idx
        hash_latency = self._hash_latency
        direct_meta = self._direct_meta
        sector_size = constants.SECTOR_SIZE
        latencies: List[float] = []
        record = latencies.append
        l2_stats.accesses += len(translated)
        issue = window.last_issue

        for entry in translated:
            (is_write, line_addr, line_key, partition, local_offset,
             bank, cache, first, last, n, range_mask, sampled, lines,
             mshr) = entry
            # -- issue: jump the clock to the next ready event --------
            issue = seq * gap
            seq += 1
            last_stall = 0.0
            if len(heap) >= cap:
                freed = heappop(heap)
                if freed > issue:
                    last_stall = freed - issue
                    stall_cycles += last_stall
                    issue = freed
            if profile:
                mark("issued")
            # -- L2 ---------------------------------------------------
            completion = issue + hit_latency
            if is_write:
                if not cache.write_range_resident(line_key, first, last):
                    completion = store_alloc(issue, line_key, bank, first,
                                             last, completion)
                if profile:
                    mark("l2")
            else:
                line = lines.get(line_key)
                if (line is not None and range_mask
                        and line.valid_mask & range_mask == range_mask):
                    # Full hit: inlined from L2Bank.access_data_range's
                    # all-resident outcome — same stats, sampling, LRU
                    # motion and MSHR merges, no call layers.
                    if sampled:
                        bank.sampled_accesses += n
                    cache.accesses += n
                    cache.hits += n
                    if next(reversed(lines)) is not line_key:
                        del lines[line_key]
                        lines[line_key] = line
                    outstanding = mshr._outstanding
                    if outstanding:
                        merged_done = 0.0
                        lookup = mshr.lookup
                        for sector in range(first, last):
                            sector_key = (line_key, sector)
                            if sector_key in outstanding:
                                merged = lookup(sector_key, issue)
                                if (merged is not None
                                        and merged > merged_done):
                                    merged_done = merged
                        if merged_done > completion:
                            completion = merged_done
                    if profile:
                        mark("l2")
                else:
                    merged_done, fetch_sectors, eviction = \
                        bank.access_data_range(line_key, first, last, issue)
                    if merged_done > completion:
                        completion = merged_done
                    if profile:
                        mark("l2")
                    if fetch_sectors is not None:
                        # Read miss, inlined from the miss block of
                        # :meth:`access`: MEE metadata walk, demand
                        # DRAM fetch, MSHR fill burst.
                        l2_stats.misses += 1
                        ctr_done = 0.0
                        if mees:
                            if direct_meta:
                                ctr_done = mees[partition].on_read_miss_direct(
                                    issue, line_addr, local_offset
                                )
                            else:
                                mee_result = mees[partition].on_read_miss(
                                    issue, line_addr, local_offset
                                )
                                ctr_done, _ = schedule(issue, mee_result)
                            if ctr_done:
                                # Pad generation (AES) starts when the
                                # counter arrives; decryption cannot
                                # complete before it.
                                ctr_done += hash_latency
                        if profile:
                            mark("metadata")
                            t_svc = prof.now()
                        size = len(fetch_sectors) * sector_size
                        channel = channels[partition]
                        if channel.fifo_fast:
                            # DRAMChannel.occupy, inlined (the event
                            # core never runs observed, so no dram
                            # event can be owed).
                            start = channel._next_free
                            if issue > start:
                                start = issue
                            occupancy = (channel.request_overhead
                                         + size / channel.bytes_per_cycle)
                            if channel._last_was_write:
                                occupancy += channel.turnaround
                                channel._last_was_write = False
                            next_free = start + occupancy
                            channel._next_free = next_free
                            ch_stats = channel.stats
                            ch_stats.requests += 1
                            ch_stats.busy_cycles += occupancy
                            ch_stats.read_bytes += size
                            data_done = next_free + channel.latency
                        else:
                            data_done = channel.service(
                                issue, size, address=line_addr
                            )
                        if profile:
                            prof.add_component("sched_data",
                                               prof.now() - t_svc)
                        traffic.data_bytes += size
                        done = (data_done if data_done >= ctr_done
                                else ctr_done)
                        mshr.allocate_burst(line_key, fetch_sectors,
                                            done, issue)
                        if completion < done:
                            completion = done
                        if record_stream:
                            streams[partition].append(
                                (local_offset, False, kernel_idx)
                            )
                        if profile:
                            mark("dram")
                    if eviction is not None and eviction.dirty_sectors:
                        writeback(issue, eviction)
                record(completion - issue)
            # -- complete: push the completion event ------------------
            heappush(heap, completion)
            if completion > last_completion:
                last_completion = completion
            if profile:
                mark("complete")

        window.seq = seq
        window.stall_cycles = stall_cycles
        window.last_stall = last_stall
        window.last_issue = issue
        window.last_completion = last_completion
        latency.record_batch(latencies)
        if profile:
            prof.mark("complete")

    def _store_alloc(self, issue: float, line_key: int, bank, first: int,
                     last: int, completion: float) -> float:
        """The batch core's store-allocate slow path: the line must be
        allocated.  With the victim cache off, the displaced line's
        write-back cannot touch any L2 data set, so the whole sector
        loop collapses to one bulk allocate with at most one victim;
        in victim mode the write-back can reshape this very set
        between sector accesses, so the sequential per-sector loop of
        :meth:`access` is kept."""
        profile = self._profile
        if profile:
            prof = self.profiler
        cache = bank.cache
        if not self._victim_mode:
            _, _, eviction = cache.access_range(
                line_key, first, last, is_write=True, fetch_on_miss=False
            )
            if eviction is not None and eviction.dirty_sectors:
                if profile:
                    prof.mark("l2")
                wb_done = self.writeback(issue, eviction)
                if wb_done > completion:
                    completion = wb_done
            return completion
        for sector in range(first, last):
            result = cache.access(
                line_key, sector, is_write=True, fetch_on_miss=False
            )
            if result.eviction is not None and result.eviction.dirty_sectors:
                if profile:
                    prof.mark("l2")
                wb_done = self.writeback(issue, result.eviction)
                completion = max(completion, wb_done)
        return completion

    # ------------------------------------------------------------------
    # Write-back path
    # ------------------------------------------------------------------

    def writeback(self, issue: float, eviction: Eviction) -> float:
        """Process dirty L2 lines reaching memory (iteratively: victim
        insertions may displace further dirty data lines).  Returns the
        completion time of the last data write (store backpressure).

        Self-attributing under host profiling (callers mark their own
        segment closed before calling): the data write is DRAM-stage
        time, the secure write path through the MEE is METADATA-stage
        time.
        """
        profile = self._profile
        if profile:
            prof = self.profiler
        last_done = issue
        # The displacement queue is created lazily: the overwhelmingly
        # common write-back displaces nothing, and this path also runs
        # once per dirty line at teardown.
        queue: Optional[deque] = None
        ev: Optional[Eviction] = eviction
        while ev is not None:
            key = ev.key
            size = ev.dirty_sectors * constants.SECTOR_SIZE
            # Victim metadata lines (non-int keys) are already
            # accounted; clean lines cause no traffic.
            if isinstance(key, int) and size > 0:
                phys = key * constants.BLOCK_SIZE
                # AddressMapper.to_local, inlined (skips its memo and
                # the LocalAddress wrapper on the per-eviction path).
                mapper = self.mapper
                nparts = mapper.num_partitions
                chunk = phys >> mapper._ilv_shift
                partition = chunk % nparts
                local_offset = ((chunk // nparts) * mapper.interleave_bytes
                                + (phys & mapper._ilv_mask))
                if profile:
                    t_svc = prof.now()
                channel = self.channels[partition]
                if channel.fifo_fast:
                    done = channel.occupy(issue, size, True)
                else:
                    done = channel.service(
                        issue, size, is_write=True, address=phys
                    )
                if profile:
                    prof.add_component("sched_data", prof.now() - t_svc)
                if done > last_done:
                    last_done = done
                self.traffic.data_bytes += size
                self.l2_stats.writebacks += 1
                if self._observe:
                    self.hooks.data_transfer(issue, partition, size, True)
                if self.record_stream:
                    self.streams[partition].append(
                        (local_offset, True, self.kernel_idx)
                    )
                if self.mees:
                    if profile:
                        prof.mark("dram")
                    if self._direct_meta:
                        # Direct mode: the secure write path emits
                        # straight to the channels, and (victim cache
                        # off) can displace nothing.
                        self.mees[partition].on_writeback_direct(
                            issue, phys, local_offset
                        )
                    else:
                        mee_result = self.mees[partition].on_writeback(
                            issue, phys, local_offset
                        )
                        self.schedule(issue, mee_result)
                        if mee_result.displaced_data:
                            if queue is None:
                                queue = deque()
                            for disp in mee_result.displaced_data:
                                queue.append(
                                    Eviction(
                                        key=disp.line_key,
                                        dirty_sectors=disp.dirty_sectors,
                                        valid_sectors=disp.dirty_sectors,
                                    )
                                )
                    if profile:
                        prof.mark("metadata")
            ev = queue.popleft() if queue else None
        if profile:
            prof.mark("dram")
        return last_done

    # ------------------------------------------------------------------
    # Metadata traffic scheduling
    # ------------------------------------------------------------------

    def schedule(self, issue: float,
                 mee_result: MEEResult) -> Tuple[float, float]:
        """Place the MEE's DRAM requests on their channels; returns
        ``(critical_done, last_done)`` — the completion of the latest
        decrypt-critical transfer, and of the latest transfer overall
        (teardown flushes propagate the latter)."""
        requests = mee_result.requests
        if not requests:
            return 0.0, 0.0
        ctr_done = 0.0
        last_done = 0.0
        traffic = self.traffic
        channels = self.channels
        observe = self._observe
        profile = self._profile
        if profile:
            prof = self.profiler
        for req in requests:
            if profile:
                t_svc = prof.now()
            channel = channels[req.partition]
            if channel.fifo_fast:
                # FIFO ``service`` is a pure pass-through to ``occupy``
                # (see DRAMChannel.fifo_fast) — same arithmetic, two
                # call layers fewer on the hottest MEE path.
                done = channel.occupy(issue, req.size, req.is_write)
            else:
                done = channel.service(
                    issue, req.size, req.is_write, address=req.address,
                    kind=req.kind, critical=req.critical,
                )
            if profile:
                prof.add_component("sched_meta", prof.now() - t_svc)
            # Inline dispatch for the built-in kinds; anything else
            # must be registered (an unknown kind used to be silently
            # booked as demand data).
            kind = req.kind
            if kind == "ctr":
                traffic.counter_bytes += req.size
            elif kind == "mac":
                traffic.mac_bytes += req.size
            elif kind == "bmt":
                traffic.bmt_bytes += req.size
            elif kind == "mispred":
                traffic.misprediction_bytes += req.size
            elif kind == "data":
                traffic.data_bytes += req.size
            else:
                counter_attr = TRAFFIC_KIND_COUNTERS.get(kind)
                if counter_attr is None:
                    raise ValueError(
                        f"unregistered DRAM request kind {kind!r}; "
                        "declare it with repro.sim.pipeline."
                        "register_traffic_kind()"
                    )
                setattr(traffic, counter_attr,
                        getattr(traffic, counter_attr) + req.size)
            if observe:
                self.hooks.metadata_request(issue, req, done)
            if req.critical:
                ctr_done = max(ctr_done, done)
            last_done = max(last_done, done)
        return ctr_done, last_done

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def final_flush(self, end: float) -> float:
        """Context teardown: dirty data leaves the L2 through the
        secure write path, dirty metadata drains to DRAM, and any
        writes a scheduler was still deferring are issued.  Returns the
        completion cycle of the last teardown transfer (>= ``end``)."""
        profile = self._profile
        if profile:
            prof = self.profiler
        last = end
        for partition in range(self.config.gpu.num_partitions):
            for eviction in self.l2[partition].flush():
                if profile:
                    prof.mark("l2")
                last = max(last, self.writeback(end, eviction))
        if profile:
            prof.mark("l2")
        for mee in self.mees:
            if self._direct_meta:
                last = max(last, mee.flush_direct(end))
            else:
                result = MEEResult(requests=mee.flush())
                _, flush_done = self.schedule(end, result)
                last = max(last, flush_done)
        if profile:
            prof.mark("metadata")
        for channel in self.channels:
            last = max(last, channel.drain())
        if profile:
            prof.mark("dram")
        return last
