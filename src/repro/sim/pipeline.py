"""The memory-request pipeline (the request layer).

One typed :class:`MemoryRequest` walks the lifecycle the paper
studies — issued → L2 → metadata (MEE) → DRAM → complete — through a
:class:`MemoryPipeline` that owns the L2 partitions, the per-partition
MEEs and the DRAM channels.  :class:`~repro.sim.gpu.GPUSimulator`
shrinks to wiring (construct the components, drive the frontend) plus
result assembly; the float plumbing that used to be hand-rolled across
``_access``/``_writeback``/``_schedule`` lives here, and observability
attaches through :class:`PipelineHooks` at the lifecycle transitions
instead of being inlined at each call site.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.common import constants
from repro.common.address import AddressMapper
from repro.common.config import SimConfig
from repro.common.types import TrafficCounters
from repro.core.mee import DRAMRequest, MEEResult, MemoryEncryptionEngine
from repro.memory.cache import Eviction
from repro.memory.dram import DRAMChannel
from repro.memory.l2 import PartitionL2
from repro.perf.hostprof import NULL_PROFILER, HostProfiler
from repro.sim.stats import L2Stats

#: Completion latency of an L2 hit (core <-> L2 round trip).
L2_HIT_LATENCY = 90

#: DRAM-request kind -> the :class:`TrafficCounters` attribute that
#: accumulates its bytes.  :meth:`MemoryPipeline.schedule` refuses
#: kinds that are not registered here: an unknown kind used to be
#: silently booked as demand data, which corrupted every overhead
#: ratio derived from the traffic breakdown.
TRAFFIC_KIND_COUNTERS: Dict[str, str] = {
    "data": "data_bytes",
    "ctr": "counter_bytes",
    "mac": "mac_bytes",
    "bmt": "bmt_bytes",
    "mispred": "misprediction_bytes",
}


def register_traffic_kind(kind: str, counter_attr: str) -> None:
    """Register a custom DRAM-request kind.

    Schemes that emit new metadata kinds must map them to an existing
    :class:`TrafficCounters` attribute before the pipeline will
    schedule them (``schedule`` raises on unregistered kinds).
    """
    if counter_attr not in TrafficCounters.__dataclass_fields__:
        raise ValueError(
            f"unknown TrafficCounters attribute {counter_attr!r}"
        )
    TRAFFIC_KIND_COUNTERS[kind] = counter_attr


class Stage(Enum):
    """Lifecycle position of one memory request."""

    ISSUED = "issued"
    L2 = "l2"
    METADATA = "metadata"
    DRAM = "dram"
    COMPLETE = "complete"


class MemoryRequest:
    """One warp memory access moving through the pipeline.

    A ``__slots__`` class rather than a dataclass: one instance is
    created per simulated access, so instance-dict allocation is pure
    hot-path overhead.

    Fields beyond the constructor arguments:

    * ``stage`` — lifecycle position (:class:`Stage`);
    * ``partition`` — home partition (set once the address is mapped);
    * ``l2_miss`` — did the L2 lookup miss (any sector need a fetch)?
    * ``completion`` — completion cycle (valid once COMPLETE);
    * ``ctr_done`` — cycle the decrypt-critical counter fetch (if any)
      resolved;
    * ``fetch_sectors`` — sectors of the line that needed a DRAM fetch.
    """

    __slots__ = ("issue", "address", "is_write", "nsectors", "stage",
                 "partition", "l2_miss", "completion", "ctr_done",
                 "fetch_sectors")

    def __init__(self, issue: float, address: int, is_write: bool,
                 nsectors: int) -> None:
        self.issue = issue
        self.address = address
        self.is_write = is_write
        self.nsectors = nsectors
        self.stage = Stage.ISSUED
        self.partition = -1
        self.l2_miss = False
        self.completion = 0.0
        self.ctr_done = 0.0
        self.fetch_sectors: List[int] = _NO_SECTORS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryRequest(issue={self.issue}, address={self.address}, "
            f"is_write={self.is_write}, nsectors={self.nsectors}, "
            f"stage={self.stage}, completion={self.completion})"
        )


#: Shared empty fetch list for requests that never miss.  Treated as
#: immutable — the pipeline replaces it, never appends to it.
_NO_SECTORS: List[int] = []


class PipelineHooks:
    """No-op lifecycle hooks.  Subclass and attach to a pipeline to
    observe transitions; :class:`ObserverHooks` adapts them onto the
    :class:`repro.obs.observer.Observer` event vocabulary."""

    enabled = False

    def l2_checked(self, request: MemoryRequest) -> None:
        """A read finished its L2 lookup (``request.l2_miss`` set)."""

    def metadata_request(self, issue: float, dram_request: DRAMRequest,
                         done: float) -> None:
        """One MEE-generated transfer was placed on its channel."""

    def data_transfer(self, issue: float, partition: int, size: int,
                      is_write: bool) -> None:
        """A demand data transfer was placed on its channel."""

    def completed(self, request: MemoryRequest) -> None:
        """The request reached COMPLETE."""


class ObserverHooks(PipelineHooks):
    """Adapts lifecycle transitions to the observer event stream."""

    enabled = True

    def __init__(self, obs) -> None:
        self.obs = obs

    def l2_checked(self, request: MemoryRequest) -> None:
        self.obs.l2_access(request.issue, request.partition,
                           miss=request.l2_miss)

    def metadata_request(self, issue: float, dram_request: DRAMRequest,
                         done: float) -> None:
        self.obs.traffic(issue, dram_request.partition, dram_request.kind,
                         dram_request.size, dram_request.is_write)
        self.obs.mee_op(dram_request.partition, dram_request.kind,
                        dram_request.is_write, issue, done,
                        critical=dram_request.critical)

    def data_transfer(self, issue: float, partition: int, size: int,
                      is_write: bool) -> None:
        self.obs.traffic(issue, partition, "data", size, is_write)


class MemoryPipeline:
    """L2 → MEE → DRAM for one simulation instance.

    The pipeline owns the traffic/L2 accounting and the (optional)
    address-stream recording; the simulator owns workload sequencing
    and result assembly.
    """

    def __init__(
        self,
        config: SimConfig,
        mapper: AddressMapper,
        channels: List[DRAMChannel],
        l2: List[PartitionL2],
        mees: List[MemoryEncryptionEngine],
        hooks: Optional[PipelineHooks] = None,
        record_stream: bool = False,
        profiler: Optional[HostProfiler] = None,
    ) -> None:
        self.config = config
        self.mapper = mapper
        self.channels = channels
        self.l2 = l2
        self.mees = mees
        self.hooks = hooks if hooks is not None else PipelineHooks()
        self._observe = self.hooks.enabled
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._profile = self.profiler.enabled
        self.record_stream = record_stream
        self.streams: Dict[int, List[Tuple[int, bool, int]]] = {
            p: [] for p in range(config.gpu.num_partitions)
        }
        self.traffic = TrafficCounters()
        self.l2_stats = L2Stats()
        self.kernel_idx = 0

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, issue: float, addr: int, is_write: bool,
               nsectors: int) -> MemoryRequest:
        """Run one access through the full lifecycle; the returned
        request carries its completion cycle.

        When host profiling is on, ledger marks attribute the body to
        the L2 / METADATA / DRAM stages (write-backs self-attribute
        through their own marks); each mark costs one local-boolean
        branch when profiling is off.
        """
        profile = self._profile
        if profile:
            prof = self.profiler
        request = MemoryRequest(issue, addr, is_write, nsectors)
        line_addr = addr - addr % constants.BLOCK_SIZE
        line_key = line_addr // constants.BLOCK_SIZE
        local = self.mapper.to_local(line_addr)
        partition = request.partition = local.partition
        bank = self.l2[partition].bank_for(line_key)
        first_sector = (addr % constants.BLOCK_SIZE) // constants.SECTOR_SIZE
        last_sector = min(first_sector + nsectors, constants.SECTORS_PER_BLOCK)

        self.l2_stats.accesses += 1
        request.stage = Stage.L2
        if is_write:
            # Stores allocate without fetching (full-sector writes).
            # They occupy a frontend slot briefly (store buffer); a
            # displaced dirty line's write-back backpressures them.
            completion = issue + L2_HIT_LATENCY
            if bank.cache.has_line(line_key):
                # Resident line: no eviction is possible, so the whole
                # sector loop collapses to one bulk mask update.
                bank.cache.access_range(
                    line_key, first_sector, last_sector,
                    is_write=True, fetch_on_miss=False,
                )
            else:
                # The line must be allocated; a displaced dirty line's
                # write-back can (in victim mode) reshape this very set
                # between sector accesses, so keep the sequential loop.
                for sector in range(first_sector, last_sector):
                    result = bank.cache.access(
                        line_key, sector, is_write=True, fetch_on_miss=False
                    )
                    if result.eviction is not None and result.eviction.dirty_sectors:
                        if profile:
                            prof.mark("l2")
                        wb_done = self.writeback(issue, result.eviction)
                        completion = max(completion, wb_done)
            if profile:
                prof.mark("l2")
            return self._complete(request, completion)

        completion = issue + L2_HIT_LATENCY
        merged_done, fetch_sectors, eviction = bank.access_data_range(
            line_key, first_sector, last_sector, issue
        )
        if merged_done > completion:
            completion = merged_done

        if fetch_sectors is not None:
            request.fetch_sectors = fetch_sectors
            request.l2_miss = True
        if self._observe:
            self.hooks.l2_checked(request)
        if profile:
            prof.mark("l2")
        if fetch_sectors is not None:
            self.l2_stats.misses += 1
            ctr_done = 0.0
            if self.mees:
                request.stage = Stage.METADATA
                mee_result = self.mees[partition].on_read_miss(
                    issue, line_addr, local.offset
                )
                ctr_done, _ = self.schedule(issue, mee_result)
                if ctr_done:
                    # Pad generation (AES) starts when the counter
                    # arrives; decryption cannot complete before it.
                    ctr_done += self.config.gpu.hash_latency
            request.ctr_done = ctr_done
            if profile:
                prof.mark("metadata")
                t_svc = prof.now()
            request.stage = Stage.DRAM
            size = len(fetch_sectors) * constants.SECTOR_SIZE
            data_done = self.channels[partition].service(
                issue, size, address=line_addr
            )
            if profile:
                prof.add_component("sched_data", prof.now() - t_svc)
            self.traffic.data_bytes += size
            if self._observe:
                self.hooks.data_transfer(issue, partition, size, False)
            done = max(data_done, ctr_done)
            for sector in fetch_sectors:
                bank.register_fill(line_key, sector, done, issue)
            completion = max(completion, done)
            if self.record_stream:
                self.streams[partition].append(
                    (local.offset, False, self.kernel_idx)
                )
            if profile:
                prof.mark("dram")

        if eviction is not None and eviction.dirty_sectors:
            self.writeback(issue, eviction)
        return self._complete(request, completion)

    def _complete(self, request: MemoryRequest,
                  completion: float) -> MemoryRequest:
        request.stage = Stage.COMPLETE
        request.completion = completion
        if self._observe:
            self.hooks.completed(request)
        return request

    # ------------------------------------------------------------------
    # Write-back path
    # ------------------------------------------------------------------

    def writeback(self, issue: float, eviction: Eviction) -> float:
        """Process dirty L2 lines reaching memory (iteratively: victim
        insertions may displace further dirty data lines).  Returns the
        completion time of the last data write (store backpressure).

        Self-attributing under host profiling (callers mark their own
        segment closed before calling): the data write is DRAM-stage
        time, the secure write path through the MEE is METADATA-stage
        time.
        """
        profile = self._profile
        if profile:
            prof = self.profiler
        last_done = issue
        # The displacement queue is created lazily: the overwhelmingly
        # common write-back displaces nothing, and this path also runs
        # once per dirty line at teardown.
        queue: Optional[deque] = None
        ev: Optional[Eviction] = eviction
        while ev is not None:
            key = ev.key
            size = ev.dirty_sectors * constants.SECTOR_SIZE
            # Victim metadata lines (non-int keys) are already
            # accounted; clean lines cause no traffic.
            if isinstance(key, int) and size > 0:
                phys = key * constants.BLOCK_SIZE
                local = self.mapper.to_local(phys)
                partition = local.partition
                if profile:
                    t_svc = prof.now()
                done = self.channels[partition].service(
                    issue, size, is_write=True, address=phys
                )
                if profile:
                    prof.add_component("sched_data", prof.now() - t_svc)
                if done > last_done:
                    last_done = done
                self.traffic.data_bytes += size
                self.l2_stats.writebacks += 1
                if self._observe:
                    self.hooks.data_transfer(issue, partition, size, True)
                if self.record_stream:
                    self.streams[partition].append(
                        (local.offset, True, self.kernel_idx)
                    )
                if self.mees:
                    if profile:
                        prof.mark("dram")
                    mee_result = self.mees[partition].on_writeback(
                        issue, phys, local.offset
                    )
                    self.schedule(issue, mee_result)
                    if mee_result.displaced_data:
                        if queue is None:
                            queue = deque()
                        for disp in mee_result.displaced_data:
                            queue.append(
                                Eviction(
                                    key=disp.line_key,
                                    dirty_sectors=disp.dirty_sectors,
                                    valid_sectors=disp.dirty_sectors,
                                )
                            )
                    if profile:
                        prof.mark("metadata")
            ev = queue.popleft() if queue else None
        if profile:
            prof.mark("dram")
        return last_done

    # ------------------------------------------------------------------
    # Metadata traffic scheduling
    # ------------------------------------------------------------------

    def schedule(self, issue: float,
                 mee_result: MEEResult) -> Tuple[float, float]:
        """Place the MEE's DRAM requests on their channels; returns
        ``(critical_done, last_done)`` — the completion of the latest
        decrypt-critical transfer, and of the latest transfer overall
        (teardown flushes propagate the latter)."""
        ctr_done = 0.0
        last_done = 0.0
        traffic = self.traffic
        observe = self._observe
        profile = self._profile
        if profile:
            prof = self.profiler
        for req in mee_result.requests:
            if profile:
                t_svc = prof.now()
            done = self.channels[req.partition].service(
                issue, req.size, req.is_write, address=req.address,
                kind=req.kind, critical=req.critical,
            )
            if profile:
                prof.add_component("sched_meta", prof.now() - t_svc)
            # Inline dispatch for the built-in kinds; anything else
            # must be registered (an unknown kind used to be silently
            # booked as demand data).
            kind = req.kind
            if kind == "ctr":
                traffic.counter_bytes += req.size
            elif kind == "mac":
                traffic.mac_bytes += req.size
            elif kind == "bmt":
                traffic.bmt_bytes += req.size
            elif kind == "mispred":
                traffic.misprediction_bytes += req.size
            elif kind == "data":
                traffic.data_bytes += req.size
            else:
                counter_attr = TRAFFIC_KIND_COUNTERS.get(kind)
                if counter_attr is None:
                    raise ValueError(
                        f"unregistered DRAM request kind {kind!r}; "
                        "declare it with repro.sim.pipeline."
                        "register_traffic_kind()"
                    )
                setattr(traffic, counter_attr,
                        getattr(traffic, counter_attr) + req.size)
            if observe:
                self.hooks.metadata_request(issue, req, done)
            if req.critical:
                ctr_done = max(ctr_done, done)
            last_done = max(last_done, done)
        return ctr_done, last_done

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def final_flush(self, end: float) -> float:
        """Context teardown: dirty data leaves the L2 through the
        secure write path, dirty metadata drains to DRAM, and any
        writes a scheduler was still deferring are issued.  Returns the
        completion cycle of the last teardown transfer (>= ``end``)."""
        profile = self._profile
        if profile:
            prof = self.profiler
        last = end
        for partition in range(self.config.gpu.num_partitions):
            for eviction in self.l2[partition].flush():
                if profile:
                    prof.mark("l2")
                last = max(last, self.writeback(end, eviction))
        if profile:
            prof.mark("l2")
        for mee in self.mees:
            result = MEEResult(requests=mee.flush())
            _, flush_done = self.schedule(end, result)
            last = max(last, flush_done)
        if profile:
            prof.mark("metadata")
        for channel in self.channels:
            last = max(last, channel.drain())
        if profile:
            prof.mark("dram")
        return last
