"""Per-run statistics and result containers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.common.types import PredictionStats, Scheme, TrafficCounters
from repro.obs.metrics import LogHistogram


@dataclass
class L2Stats:
    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class LatencyStats:
    """Completion-minus-issue accounting for demand reads.

    Backed by a streaming log histogram, so p50/p95/p99 are available
    without retaining samples.
    """

    total_cycles: float = 0.0
    count: int = 0
    max_cycles: float = 0.0
    histogram: LogHistogram = field(
        default_factory=lambda: LogHistogram("demand_read_latency")
    )

    def record(self, latency: float) -> None:
        self.total_cycles += latency
        self.count += 1
        if latency > self.max_cycles:
            self.max_cycles = latency
        self.histogram.record(latency)

    def record_batch(self, latencies) -> None:
        """Record a whole kernel batch of latencies in one pass (the
        event core).  Accumulation order matches per-value
        :meth:`record` calls — the float totals are bit-identical."""
        if not latencies:
            return
        total = self.total_cycles
        max_cycles = self.max_cycles
        for latency in latencies:
            total += latency
            if latency > max_cycles:
                max_cycles = latency
        self.total_cycles = total
        self.max_cycles = max_cycles
        self.count += len(latencies)
        self.histogram.record_many(latencies)

    @property
    def average(self) -> float:
        return self.total_cycles / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated p-th percentile (within one histogram bucket,
        ~19 %, of the true order statistic)."""
        return self.histogram.percentile(p)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)


@dataclass
class RunResult:
    """Everything one (workload, scheme) simulation produced."""

    workload: str
    scheme: Scheme
    cycles: float
    instructions: int
    traffic: TrafficCounters
    l2: L2Stats
    dram_utilization: float
    latency: LatencyStats = field(default_factory=LatencyStats)
    readonly_stats: PredictionStats = field(default_factory=PredictionStats)
    streaming_stats: PredictionStats = field(default_factory=PredictionStats)
    shared_counter_reads: int = 0
    common_counter_hits: int = 0
    mdc_accesses: int = 0
    victim_hits: int = 0
    victim_insertions: int = 0
    stream_verdicts: int = 0
    readonly_transitions: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def normalized_ipc(self, baseline: "RunResult") -> float:
        """IPC normalised to the unprotected baseline (Fig. 12)."""
        if self.cycles <= 0:
            return 0.0
        return baseline.cycles / self.cycles

    def overhead(self, baseline: "RunResult") -> float:
        """Performance overhead = 1 - normalised IPC."""
        return 1.0 - self.normalized_ipc(baseline)

    @property
    def bandwidth_overhead(self) -> float:
        """Metadata bytes normalised to data bytes (Fig. 14)."""
        return self.traffic.overhead_ratio()

    def traffic_breakdown(self) -> Dict[str, float]:
        """Per-kind bytes normalised to data bytes."""
        data = self.traffic.data_bytes or 1
        return {
            "ctr": self.traffic.counter_bytes / data,
            "mac": self.traffic.mac_bytes / data,
            "bmt": self.traffic.bmt_bytes / data,
            "mispred": self.traffic.misprediction_bytes / data,
        }


def geomean(values) -> float:
    """Geometric mean via a log-sum: a raw product overflows to ``inf``
    (or underflows to 0.0) on long value lists."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
