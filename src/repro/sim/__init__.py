"""Simulation engine: frontend, GPU model, profiling, runner, stats."""

from repro.sim.checker import FunctionalReplay
from repro.sim.frontend import Frontend
from repro.sim.gpu import GPUSimulator, L2_HIT_LATENCY
from repro.sim.parallel import JobOutcome, MatrixResult, execute_jobs, run_matrix
from repro.sim.profiling import TraceProfile
from repro.sim.runner import Calibration, Runner, shared_runner
from repro.sim.stats import L2Stats, RunResult, geomean, mean

__all__ = [
    "FunctionalReplay",
    "Frontend",
    "GPUSimulator",
    "L2_HIT_LATENCY",
    "JobOutcome",
    "MatrixResult",
    "execute_jobs",
    "run_matrix",
    "TraceProfile",
    "Calibration",
    "Runner",
    "shared_runner",
    "L2Stats",
    "RunResult",
    "geomean",
    "mean",
]
