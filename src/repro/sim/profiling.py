"""Offline trace profiling: the ground truth for Figs. 5, 10, 11.

A recording run (unprotected scheme) captures, per partition, the exact
stream the MEE would see — L2 miss fills and write backs, in order.
The profile derived from it answers:

* which 16 KB regions were written during each kernel (read-only
  ground truth, Fig. 10, and the Fig. 5 read-only access ratio);
* each 4 KB chunk's access-pattern *phases* under the same K-access
  window semantics the MATs use (streaming ground truth, Fig. 11, and
  the Fig. 5 streaming ratio);
* the oracle initialisation of SHM_upper_bound's predictors.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common import constants
from repro.common.types import Pattern
from repro.core.mee import TruthProvider

#: One recorded MEE-visible event: (local_offset, is_write, kernel_idx).
StreamEvent = Tuple[int, bool, int]


@dataclass
class _ChunkWindow:
    start_seq: int
    mask: int = 0
    count: int = 0


class TraceProfile(TruthProvider):
    """Ground truth derived from one recorded unprotected run."""

    def __init__(
        self,
        region_size: int = constants.READONLY_REGION_SIZE,
        chunk_size: int = constants.STREAM_CHUNK_SIZE,
        window: int = constants.MAT_MONITOR_ACCESSES,
    ) -> None:
        self.region_size = region_size
        self.chunk_size = chunk_size
        self.window = window
        self.blocks_per_chunk = chunk_size // constants.BLOCK_SIZE
        self._full_mask = (1 << self.blocks_per_chunk) - 1
        # (partition, kernel) -> sets of region ids.
        self._touched: Dict[Tuple[int, int], set] = {}
        self._written: Dict[Tuple[int, int], set] = {}
        # partition -> chunk -> ([phase start seqs], [phase patterns]).
        self._phases: Dict[int, Dict[int, Tuple[List[int], List[Pattern]]]] = {}
        # Fig. 5 accounting.
        self.total_accesses = 0
        self.readonly_accesses = 0
        self.streaming_accesses = 0
        self.kernels = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def ingest(self, streams: Dict[int, List[StreamEvent]]) -> "TraceProfile":
        """Build the profile from per-partition recorded streams."""
        for partition, stream in streams.items():
            self._build_phases(partition, stream)
            self._build_readonly(partition, stream)
        self._count_ratios(streams)
        return self

    def _build_phases(self, partition: int, stream: List[StreamEvent]) -> None:
        phases: Dict[int, Tuple[List[int], List[Pattern]]] = {}
        windows: Dict[int, _ChunkWindow] = {}
        for seq, (offset, _is_write, _kernel) in enumerate(stream):
            chunk = offset // self.chunk_size
            block = (offset % self.chunk_size) // constants.BLOCK_SIZE
            win = windows.get(chunk)
            if win is None:
                win = windows[chunk] = _ChunkWindow(start_seq=seq)
            win.mask |= 1 << block
            win.count += 1
            if win.count >= self.window:
                self._close_window(phases, chunk, win)
                del windows[chunk]
        for chunk, win in windows.items():
            self._close_window(phases, chunk, win)
        self._phases[partition] = phases

    def _close_window(self, phases, chunk: int, win: _ChunkWindow) -> None:
        pattern = Pattern.STREAM if win.mask == self._full_mask else Pattern.RANDOM
        starts, patterns = phases.setdefault(chunk, ([], []))
        starts.append(win.start_seq)
        patterns.append(pattern)

    def _build_readonly(self, partition: int, stream: List[StreamEvent]) -> None:
        for offset, is_write, kernel in stream:
            region = offset // self.region_size
            key = (partition, kernel)
            self._touched.setdefault(key, set()).add(region)
            if is_write:
                self._written.setdefault(key, set()).add(region)
            if kernel + 1 > self.kernels:
                self.kernels = kernel + 1

    def _count_ratios(self, streams: Dict[int, List[StreamEvent]]) -> None:
        for partition, stream in streams.items():
            for seq, (offset, _is_write, kernel) in enumerate(stream):
                self.total_accesses += 1
                chunk = offset // self.chunk_size
                if self.stream_truth(partition, chunk, seq) is Pattern.STREAM:
                    self.streaming_accesses += 1
                region = offset // self.region_size
                if self.readonly_truth(partition, kernel, region):
                    self.readonly_accesses += 1

    # ------------------------------------------------------------------
    # TruthProvider interface
    # ------------------------------------------------------------------

    def readonly_truth(self, partition: int, kernel: int, region: int) -> Optional[bool]:
        written = self._written.get((partition, kernel))
        return written is None or region not in written

    def stream_truth(self, partition: int, chunk: int, seq: int) -> Optional[Pattern]:
        by_chunk = self._phases.get(partition)
        phases = by_chunk.get(chunk) if by_chunk is not None else None
        if phases is None:
            return None
        starts, patterns = phases
        idx = bisect_right(starts, seq) - 1
        if idx < 0:
            idx = 0
        return patterns[idx]

    def first_phase_patterns(self, partition: int) -> Dict[int, Pattern]:
        return {
            chunk: patterns[0]
            for chunk, (starts, patterns) in self._phases.get(partition, {}).items()
        }

    def readonly_regions(self, partition: int, kernel: int) -> List[int]:
        touched = self._touched.get((partition, kernel), set())
        written = self._written.get((partition, kernel), set())
        return sorted(touched - written)

    # ------------------------------------------------------------------
    # Fig. 5 ratios
    # ------------------------------------------------------------------

    @property
    def streaming_ratio(self) -> float:
        if not self.total_accesses:
            return 0.0
        return self.streaming_accesses / self.total_accesses

    @property
    def readonly_ratio(self) -> float:
        if not self.total_accesses:
            return 0.0
        return self.readonly_accesses / self.total_accesses
