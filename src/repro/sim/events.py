"""The event queue of the batched execution core.

The simulator's timing model is *analytic*: every component answers
"when does this finish?" with arithmetic, so there is no cycle loop to
tick.  The only genuinely sequential state is the frontend's bounded
window of outstanding completions — and that window is exactly a
min-heap of completion times, i.e. an event queue.  When the window is
full, the clock jumps directly to the next completion event
(``heappop``) instead of ever visiting the idle cycles in between;
that is the event-driven "idle-cycle skipping" of this core.

:class:`CompletionWindow` holds that queue with **public** slots so the
fused batch loop in :meth:`repro.sim.pipeline.MemoryPipeline.run_batch`
can hoist them into locals, run a whole kernel batch, and write the
state back.  Its method forms (:meth:`issue` / :meth:`complete` /
:meth:`drain`) are bit-identical to the legacy
:class:`repro.sim.frontend.Frontend` — same float operations in the
same order — which is what keeps the golden oracle byte-stable across
cores (``tests/sim/test_events.py`` pins the equivalence).
"""

from __future__ import annotations

import heapq
from typing import List


class CompletionWindow:
    """Bounded window of outstanding completions (the event queue).

    Invariants shared with the legacy frontend:

    * access ``i`` may not issue before its program-order slot
      ``i * gap`` (the compute-rate floor);
    * with ``max_inflight`` completions outstanding, issue waits for
      the *earliest* completion event — ``freed = heappop(inflight)``
      — and stalls only by ``freed - ready`` when that event lies in
      the future.  A completion landing exactly on the ready slot
      (``freed == ready``) frees the slot just in time: zero stall.
    """

    __slots__ = ("max_inflight", "gap", "inflight", "seq", "stall_cycles",
                 "last_stall", "last_issue", "last_completion")

    def __init__(self, max_inflight: int, gap: float) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if gap <= 0:
            raise ValueError("gap must be positive")
        self.max_inflight = max_inflight
        self.gap = gap
        #: Outstanding completion times, a ``heapq`` min-heap: the
        #: event queue the clock jumps along when the window is full.
        self.inflight: List[float] = []
        self.seq = 0
        self.stall_cycles = 0.0
        #: Stall length of the most recent issue (0.0 when it issued
        #: on time) — read by the observability layer for stall spans.
        self.last_stall = 0.0
        self.last_issue = 0.0
        self.last_completion = 0.0

    def issue(self) -> float:
        """Cycle at which the next access issues."""
        ready = self.seq * self.gap
        self.seq += 1
        issue = ready
        stall = 0.0
        if len(self.inflight) >= self.max_inflight:
            freed = heapq.heappop(self.inflight)
            if freed > issue:
                stall = freed - issue
                self.stall_cycles += stall
                issue = freed
        self.last_stall = stall
        self.last_issue = issue
        return issue

    def complete(self, completion: float) -> None:
        """Register the completion event of the just-issued access."""
        heapq.heappush(self.inflight, completion)
        if completion > self.last_completion:
            self.last_completion = completion

    def drain(self) -> float:
        """All outstanding work finished."""
        return max(self.last_completion, self.last_issue)
