"""The SM frontend: a bounded window of outstanding memory requests.

GPUs hide memory latency with massive memory-level parallelism, but the
parallelism is finite (MSHRs, warps in flight).  The frontend models it
as a sliding window: an access may not issue until (a) its program-
order issue slot ``seq * gap`` arrives — the compute-rate calibration —
and (b) a window slot is free.  Added memory latency (e.g. a
decrypt-blocking counter fetch) therefore throttles issue exactly the
way Little's law says it should.

The window state machine itself lives in :mod:`repro.sim.events`
(:class:`~repro.sim.events.CompletionWindow` — the event queue of the
batched core); :class:`Frontend` is the same machine under its
historical name, driven one access at a time by the legacy run loop.
The frontend's other job — deciding *what* enters the window — is
:func:`iter_batches`: accesses are emitted in kernel-order batches
(one batch per kernel; ``barrier:false`` phases were already merged
into their kernel at composition time), which is the unit the event
core translates, classifies and runs in one pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple

from repro.sim.events import CompletionWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.base import Kernel, Workload


class Frontend(CompletionWindow):
    """Issue-window bookkeeping for one simulation run (the per-access
    legacy interface; state and arithmetic are the inherited event
    queue's, bit for bit)."""


def iter_batches(workload: "Workload") -> Iterator[Tuple[int, "Kernel"]]:
    """Emit the workload's accesses in kernel-order batches.

    Yields ``(kernel_idx, kernel)``; each kernel's access list is one
    batch.  Kernels are the batch boundary because host events and
    detector/victim updates happen between them (``_kernel_boundary``)
    while *within* a kernel the access stream is a pure sequence —
    composed suites merge ``barrier:false`` phases into their kernel
    before lowering, so mid-kernel markers never split a batch.
    """
    return enumerate(workload.kernels)
