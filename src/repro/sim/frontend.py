"""The SM frontend: a bounded window of outstanding memory requests.

GPUs hide memory latency with massive memory-level parallelism, but the
parallelism is finite (MSHRs, warps in flight).  The frontend models it
as a sliding window: an access may not issue until (a) its program-
order issue slot ``seq * gap`` arrives — the compute-rate calibration —
and (b) a window slot is free.  Added memory latency (e.g. a
decrypt-blocking counter fetch) therefore throttles issue exactly the
way Little's law says it should.
"""

from __future__ import annotations

import heapq
from typing import List


class Frontend:
    """Issue-window bookkeeping for one simulation run."""

    def __init__(self, max_inflight: int, gap: float) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if gap <= 0:
            raise ValueError("gap must be positive")
        self.max_inflight = max_inflight
        self.gap = gap
        self._inflight: List[float] = []
        self._seq = 0
        self.stall_cycles = 0.0
        #: Stall length of the most recent issue (0.0 when it issued
        #: on time) — read by the observability layer for stall spans.
        self.last_stall = 0.0
        self.last_issue = 0.0
        self.last_completion = 0.0

    def issue(self) -> float:
        """Cycle at which the next access issues."""
        ready = self._seq * self.gap
        self._seq += 1
        issue = ready
        stall = 0.0
        if len(self._inflight) >= self.max_inflight:
            freed = heapq.heappop(self._inflight)
            if freed > issue:
                stall = freed - issue
                self.stall_cycles += stall
                issue = freed
        self.last_stall = stall
        self.last_issue = issue
        return issue

    def complete(self, completion: float) -> None:
        """Register the completion time of the just-issued access."""
        heapq.heappush(self._inflight, completion)
        if completion > self.last_completion:
            self.last_completion = completion

    def drain(self) -> float:
        """All outstanding work finished."""
        return max(self.last_completion, self.last_issue)
