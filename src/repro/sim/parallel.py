"""Fault-tolerant parallel job execution across worker processes.

The simulator is single-threaded Python; a full-scale sweep — every
figure of the paper's evaluation is a (workload x scheme) matrix — is
embarrassingly parallel across cells.  This module provides the
process-pool substrate the campaign engine
(:mod:`repro.eval.campaign`) and the legacy matrix sweep build on:

* :func:`execute_jobs` — run arbitrary picklable jobs on a
  ``ProcessPoolExecutor`` with per-job timeouts (enforced inside the
  worker via ``SIGALRM``, so a runaway cell aborts itself), bounded
  retries with linear backoff, and recovery from killed worker
  processes (a ``BrokenProcessPool`` rebuilds the pool and re-queues
  the unfinished jobs instead of aborting the sweep).
* :func:`run_matrix` — the original one-shot (workload x scheme)
  sweep, now expressed on top of :func:`execute_jobs`.

Failures never raise out of :func:`execute_jobs`: every job ends in a
:class:`JobOutcome` whose ``status`` is ``"ok"`` or ``"failed"`` and
whose ``error`` carries the worker's traceback, so a single bad cell
degrades one data point rather than the whole campaign.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.sim.stats import RunResult


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its time budget."""


@dataclass
class JobOutcome:
    """Terminal state of one job submitted to :func:`execute_jobs`.

    ``status`` is ``"ok"`` (``value`` holds the worker's return) or
    ``"failed"`` (``error`` holds the traceback or a description).
    ``reason`` classifies failures: ``"exception"`` (the worker
    raised), ``"timeout"`` (the per-job budget expired) or
    ``"worker_died"`` (the process was killed — OOM, ``os._exit``,
    signal).  ``runtime`` is wall-clock seconds inside the worker.
    """

    index: int
    status: str
    value: Any = None
    error: Optional[str] = None
    reason: Optional[str] = None
    attempts: int = 1
    runtime: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _call(worker: Callable[[Any], Any], payload: Any,
          timeout: Optional[float] = None,
          event_spool: Optional[str] = None,
          tag: Optional[str] = None) -> Tuple[str, Any, float]:
    """Run ``worker(payload)`` under an optional ``SIGALRM`` budget.

    Always returns a ``(status, value_or_traceback, seconds)`` tuple —
    worker exceptions are serialised as tracebacks rather than raised,
    so the only way a future can *raise* in the parent is process
    death (``BrokenProcessPool``).

    With ``event_spool`` set, a ``cell_started`` event (correlated by
    ``tag``) is appended to this process's spool file before the work
    begins — it survives even if the worker is killed mid-job, which is
    exactly when the parent needs it (see :mod:`repro.obs.events`).
    """
    if event_spool is not None and tag is not None:
        from repro.obs.events import spool_event

        try:
            spool_event(event_spool, "cell_started", cell=tag)
        except OSError:
            pass  # telemetry never takes the job down with it
    start = time.monotonic()
    use_alarm = (timeout is not None and timeout > 0
                 and hasattr(signal, "setitimer")
                 and threading.current_thread() is threading.main_thread())
    previous = None
    if use_alarm:
        def _on_alarm(signum, frame):
            raise JobTimeout(f"job exceeded its {timeout:.1f}s budget")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        value = worker(payload)
        return "ok", value, time.monotonic() - start
    except JobTimeout as exc:
        return "timeout", str(exc), time.monotonic() - start
    except BaseException:
        return "err", traceback.format_exc(), time.monotonic() - start
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def execute_jobs(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: int = 4,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.25,
    on_outcome: Optional[Callable[[JobOutcome], None]] = None,
    on_retry: Optional[Callable[[int, int, str], None]] = None,
    event_spool: Optional[str] = None,
    tags: Optional[Sequence[str]] = None,
) -> List[JobOutcome]:
    """Run ``worker(payload)`` for every payload on a process pool.

    ``jobs == 1`` runs everything in-process (no pool, no pickling),
    which the tests and the ``--serial`` CLI path use.  ``timeout``
    bounds each job's wall-clock seconds; a timed-out or crashed job
    is retried up to ``retries`` extra attempts with ``backoff *
    attempt`` seconds between waves, then recorded as failed.
    ``on_outcome`` fires once per job as it reaches a terminal state
    (the campaign CLI hangs its live progress off this); ``on_retry``
    fires ``(index, attempt, reason)`` every time a non-terminal
    attempt is re-queued (``reason`` in ``"exception"``/``"timeout"``/
    ``"worker_died"``) — the campaign event log hangs its fault
    telemetry off this.  ``event_spool``/``tags`` make each worker
    spool a ``cell_started`` event (correlated by the job's tag)
    before working, so the parent can reconstruct what a killed worker
    was doing.

    Returns one :class:`JobOutcome` per payload, in payload order.
    Never raises for job failures; see :class:`JobOutcome`.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if tags is not None and len(tags) != len(payloads):
        raise ValueError("tags must parallel payloads")

    def tag_of(index: int) -> Optional[str]:
        return tags[index] if tags is not None else None

    outcomes: List[Optional[JobOutcome]] = [None] * len(payloads)

    def finish(index: int, attempts: int, status: str, value: Any = None,
               error: Optional[str] = None, reason: Optional[str] = None,
               runtime: float = 0.0) -> None:
        outcome = JobOutcome(index=index, status=status, value=value,
                             error=error, reason=reason, attempts=attempts,
                             runtime=runtime)
        outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    def settle(index: int, attempts: int, status: str, value: Any,
               elapsed: float, pending: List[Tuple[int, int]]) -> None:
        """Route one worker return to a terminal outcome or a retry."""
        if status == "ok":
            finish(index, attempts, "ok", value=value, runtime=elapsed)
        elif attempts > retries:
            reason = "timeout" if status == "timeout" else "exception"
            finish(index, attempts, "failed", error=value, reason=reason,
                   runtime=elapsed)
        else:
            if on_retry is not None:
                on_retry(index, attempts,
                         "timeout" if status == "timeout" else "exception")
            pending.append((index, attempts))

    if jobs == 1:
        for i, payload in enumerate(payloads):
            attempts = 0
            while outcomes[i] is None:
                attempts += 1
                status, value, elapsed = _call(worker, payload, timeout,
                                               event_spool, tag_of(i))
                one: List[Tuple[int, int]] = []
                settle(i, attempts, status, value, elapsed, one)
                if one:
                    time.sleep(backoff * attempts)
        return outcomes  # type: ignore[return-value]

    pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(payloads))]
    wave = 0
    while pending:
        wave += 1
        if wave > 1:
            time.sleep(backoff * wave)
        pool = ProcessPoolExecutor(max_workers=jobs)
        futures = {
            pool.submit(_call, worker, payloads[i], timeout,
                        event_spool, tag_of(i)): (i, att + 1)
            for i, att in pending
        }
        pending = []
        try:
            for future in as_completed(futures):
                index, attempts = futures[future]
                try:
                    status, value, elapsed = future.result()
                except (BrokenProcessPool, Exception):
                    # The worker process died (or the pool collapsed
                    # under it).  Re-queue within the retry budget; the
                    # culprit cannot be told apart from its pool-mates,
                    # so each charged attempt is individually retried.
                    if attempts > retries:
                        finish(index, attempts, "failed",
                               error="worker process died "
                                     "(killed, OOM or hard crash)",
                               reason="worker_died")
                    else:
                        if on_retry is not None:
                            on_retry(index, attempts, "worker_died")
                        pending.append((index, attempts))
                    continue
                settle(index, attempts, status, value, elapsed, pending)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
    return outcomes  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# The legacy one-shot (workload x scheme) matrix sweep
# ---------------------------------------------------------------------------

@dataclass
class MatrixResult:
    """Results of a (workload x scheme) sweep.

    The container behind Fig. 12-style suite summaries: ``baselines``
    holds each workload's calibrated unprotected run (the Fig. 12
    normaliser) and ``runs`` the per-(workload, scheme) results.
    """

    #: workload -> baseline RunResult.
    baselines: Dict[str, RunResult] = field(default_factory=dict)
    #: (workload, scheme) -> RunResult.
    runs: Dict[Tuple[str, Scheme], RunResult] = field(default_factory=dict)

    def normalized_ipc(self, workload: str, scheme: Scheme) -> float:
        """IPC normalised to the unprotected baseline (Fig. 12 metric,
        1.0 = no slowdown)."""
        return self.runs[(workload, scheme)].normalized_ipc(
            self.baselines[workload]
        )

    def average_overhead(self, scheme: Union[Scheme, str]) -> float:
        """Mean performance overhead (1 - normalised IPC) of one scheme
        across every workload in the matrix.

        Accepts a :class:`Scheme` or its string value: results that
        travelled through the JSON result store come back with value
        strings, and schemes are matched by *equality*, never identity,
        so deserialized/cached entries aggregate correctly.
        """
        target = Scheme(scheme)
        values = [
            1.0 - self.normalized_ipc(name, s)
            for (name, s) in self.runs
            if Scheme(s) == target
        ]
        return sum(values) / len(values) if values else 0.0


def _worker(args) -> Tuple[str, RunResult, List[Tuple[str, RunResult]]]:
    """Runs one workload's whole scheme list in a fresh process."""
    name, scheme_values, scale, config = args
    from repro.sim.runner import Runner

    runner = Runner(config=config, scale=scale)
    baseline = runner.baseline(name)
    results = []
    for value in scheme_values:
        scheme = Scheme(value)
        results.append((value, runner.run(name, scheme)))
    return name, baseline, results


def run_matrix(
    workloads: List[str],
    schemes: List[Scheme],
    scale: float = 1.0,
    jobs: int = 4,
    config: Optional[SimConfig] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> MatrixResult:
    """Simulate every (workload, scheme) pair, ``jobs`` workloads at a
    time, and merge the per-worker results into one
    :class:`MatrixResult`.

    Each worker process owns a private :class:`repro.sim.runner.Runner`
    (calibration + all schemes for one workload), so no state is
    shared.  Unlike the campaign engine this sweep is all-or-nothing:
    a workload that still fails after ``retries`` extra attempts (or
    exceeds ``timeout`` seconds) raises ``RuntimeError``, preserving
    the original fail-fast contract.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    scheme_values = [s.value for s in schemes]
    tasks = [(name, scheme_values, scale, config) for name in workloads]

    out = MatrixResult()
    outcomes = execute_jobs(_worker, tasks, jobs=jobs, timeout=timeout,
                            retries=retries)
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"workload {workloads[outcome.index]!r} failed "
                f"({outcome.reason}):\n{outcome.error}"
            )
        name, baseline, results = outcome.value
        out.baselines[name] = baseline
        for value, result in results:
            out.runs[(name, Scheme(value))] = result
    return out
