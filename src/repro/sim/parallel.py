"""Parallel experiment execution across worker processes.

The simulator is single-threaded Python; a full-scale suite sweep is
embarrassingly parallel across workloads.  ``run_matrix`` fans one
worker out per workload (each worker owns its private Runner, so no
state is shared) and collects the per-scheme results.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import SimConfig
from repro.common.types import Scheme
from repro.sim.stats import RunResult


@dataclass
class MatrixResult:
    """Results of a (workload x scheme) sweep."""

    #: workload -> baseline RunResult.
    baselines: Dict[str, RunResult] = field(default_factory=dict)
    #: (workload, scheme) -> RunResult.
    runs: Dict[Tuple[str, Scheme], RunResult] = field(default_factory=dict)

    def normalized_ipc(self, workload: str, scheme: Scheme) -> float:
        return self.runs[(workload, scheme)].normalized_ipc(
            self.baselines[workload]
        )

    def average_overhead(self, scheme: Scheme) -> float:
        values = [
            1.0 - self.normalized_ipc(name, scheme)
            for (name, s) in self.runs
            if s is scheme
        ]
        return sum(values) / len(values) if values else 0.0


def _worker(args) -> Tuple[str, RunResult, List[Tuple[str, RunResult]]]:
    """Runs one workload's whole scheme list in a fresh process."""
    name, scheme_values, scale, config = args
    from repro.sim.runner import Runner

    runner = Runner(config=config, scale=scale)
    baseline = runner.baseline(name)
    results = []
    for value in scheme_values:
        scheme = Scheme(value)
        results.append((value, runner.run(name, scheme)))
    return name, baseline, results


def run_matrix(
    workloads: List[str],
    schemes: List[Scheme],
    scale: float = 1.0,
    jobs: int = 4,
    config: Optional[SimConfig] = None,
) -> MatrixResult:
    """Simulate every (workload, scheme) pair, ``jobs`` workloads at a
    time.  Workers are independent processes; results are merged into
    one :class:`MatrixResult`.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    scheme_values = [s.value for s in schemes]
    tasks = [(name, scheme_values, scale, config) for name in workloads]
    out = MatrixResult()

    if jobs == 1:
        produced = map(_worker, tasks)
    else:
        pool = ProcessPoolExecutor(max_workers=jobs)
        produced = pool.map(_worker, tasks)

    try:
        for name, baseline, results in produced:
            out.baselines[name] = baseline
            for value, result in results:
                out.runs[(name, Scheme(value))] = result
    finally:
        if jobs > 1:
            pool.shutdown()
    return out
