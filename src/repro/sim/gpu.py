"""The top-level GPU simulator.

Trace-driven and cycle-approximate: an SM frontend with bounded
memory-level parallelism issues a workload's access trace into the
partitioned L2; misses and write backs flow through each partition's
MEE (which generates security-metadata traffic per the active scheme)
and a bandwidth-limited GDDR channel.  Execution time emerges from the
interplay of issue rate, queueing and decrypt-critical counter fetches
— the same contention mechanism the paper measures on GPGPU-Sim.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.common import constants
from repro.common.address import AddressMapper
from repro.common.config import SimConfig
from repro.common.types import PredictionStats, TrafficCounters
from repro.core.mee import MEEResult, MemoryEncryptionEngine, TruthProvider
from repro.core.victim import VictimController
from repro.memory.cache import Eviction
from repro.memory.dram import DRAMChannel
from repro.memory.l2 import PartitionL2
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.sim.frontend import Frontend
from repro.sim.stats import L2Stats, LatencyStats, RunResult
from repro.workloads.base import HostEvent, Workload

#: Completion latency of an L2 hit (core <-> L2 round trip).
L2_HIT_LATENCY = 90


class GPUSimulator:
    """One simulation instance (one workload x scheme run)."""

    def __init__(
        self,
        config: SimConfig,
        truth: Optional[TruthProvider] = None,
        record_stream: bool = False,
        observer: Optional[Observer] = None,
    ) -> None:
        self.config = config
        self.scheme = config.scheme
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._observe = self.obs.enabled
        gpu = config.gpu
        self.mapper = AddressMapper(gpu.num_partitions, gpu.interleave_bytes)
        self.channels = [
            DRAMChannel(gpu.dram_bytes_per_cycle, gpu.dram_latency,
                        gpu.dram_request_overhead, gpu.dram_turnaround,
                        partition=p, observer=self.obs)
            for p in range(gpu.num_partitions)
        ]
        self.l2 = [PartitionL2(gpu, p, observer=self.obs)
                   for p in range(gpu.num_partitions)]
        self.record_stream = record_stream
        self.streams: Dict[int, List[Tuple[int, bool, int]]] = {
            p: [] for p in range(gpu.num_partitions)
        }

        self.mees: List[MemoryEncryptionEngine] = []
        self.victims: List[VictimController] = []
        if self.scheme.is_secure:
            from repro.metadata.counters import SharedCounter

            shared = SharedCounter()
            for p in range(gpu.num_partitions):
                mee = MemoryEncryptionEngine(p, config, self.mapper, shared,
                                             truth, observer=self.obs)
                if self.scheme.l2_victim_cache:
                    victim = VictimController(
                        self.l2[p], self.scheme.victim_missrate_threshold
                    )
                    mee.caches.l2 = self.l2[p]
                    mee.caches.victim_enabled = victim.enabled
                    self.victims.append(victim)
                self.mees.append(mee)

        self._traffic = TrafficCounters()
        self._l2_stats = L2Stats()
        self._latency = LatencyStats()
        self._kernel_idx = 0

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        gap: float = 0.001,
        max_inflight: Optional[int] = None,
    ) -> RunResult:
        """Simulate the workload.

        ``max_inflight`` is the calibrated memory-level parallelism of
        this workload (the knob the runner tunes to hit the published
        bandwidth utilisation); ``gap`` adds a per-access compute floor
        and is usually left at its near-zero default — the paper's
        suite is memory bound.
        """
        window = max_inflight or self.config.gpu.max_inflight_requests
        frontend = Frontend(window, gap)
        observe = self._observe
        if observe:
            self.obs.begin_run(f"{workload.name}/{self.scheme.scheme.value}",
                               self.config.gpu.num_partitions)

        if self.mees:
            for event in workload.init_copies():
                self._host_copy(event, at_init=True)

        prev_issue = 0.0
        for kernel_idx, kernel in enumerate(workload.kernels):
            self._kernel_idx = kernel_idx
            self._kernel_boundary(kernel_idx, kernel.host_events)
            if observe:
                self.obs.kernel(kernel_idx, frontend.last_issue)
            for addr, is_write, nsectors in kernel.accesses:
                issue = frontend.issue()
                if observe:
                    if frontend.last_stall > 0.0:
                        # Clamp to the stall's non-overlapping portion:
                        # with a near-zero issue gap every queued access
                        # nominally waits from cycle ~0, but only the
                        # advance past the previous issue is new stall.
                        start = max(issue - frontend.last_stall, prev_issue)
                        if issue > start:
                            self.obs.stall(start, issue)
                    prev_issue = issue
                completion = self._access(issue, addr, is_write, nsectors)
                if not is_write:
                    self._latency.record(completion - issue)
                    if observe:
                        self.obs.read_latency(issue, completion - issue)
                frontend.complete(completion)

        end = frontend.drain()
        end = self._final_flush(end)
        cycles = max(
            end,
            max((ch.next_free + ch.latency for ch in self.channels
                 if ch.stats.requests), default=0.0),
        )
        result = self._result(workload, cycles)
        if observe:
            self.obs.end_run(result)
        return result

    # ------------------------------------------------------------------
    # Kernel boundaries and host events
    # ------------------------------------------------------------------

    def _kernel_boundary(self, kernel_idx: int, events: List[HostEvent]) -> None:
        if self.mees:
            for event in events:
                if event.kind == "copy":
                    self._host_copy(event, at_init=False)
                elif event.kind == "readonly_reset":
                    self._reset_api(event)
                else:
                    raise ValueError(f"unknown host event kind: {event.kind}")
            for mee in self.mees:
                mee.on_kernel_boundary(kernel_idx)
        for victim in self.victims:
            victim.on_kernel_boundary()

    def _host_copy(self, event: HostEvent, at_init: bool) -> None:
        for p, mee in enumerate(self.mees):
            lo, hi = self.mapper.local_span(event.start, event.size, p)
            if hi > lo:
                mee.on_host_copy(lo, hi, at_init=at_init)

    def _reset_api(self, event: HostEvent) -> None:
        for p, mee in enumerate(self.mees):
            lo, hi = self.mapper.local_span(event.start, event.size, p)
            if hi > lo:
                mee.input_read_only_reset(lo, hi)

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def _access(
        self, issue: float, addr: int, is_write: bool, nsectors: int
    ) -> float:
        line_addr = addr - addr % constants.BLOCK_SIZE
        line_key = line_addr // constants.BLOCK_SIZE
        local = self.mapper.to_local(line_addr)
        partition = local.partition
        bank = self.l2[partition].bank_for(line_key)
        first_sector = (addr % constants.BLOCK_SIZE) // constants.SECTOR_SIZE
        last_sector = min(first_sector + nsectors, constants.SECTORS_PER_BLOCK)

        self._l2_stats.accesses += 1
        if is_write:
            # Stores allocate without fetching (full-sector writes).
            # They occupy a frontend slot briefly (store buffer); a
            # displaced dirty line's write-back backpressures them.
            completion = issue + L2_HIT_LATENCY
            for sector in range(first_sector, last_sector):
                result = bank.cache.access(
                    line_key, sector, is_write=True, fetch_on_miss=False
                )
                if result.eviction is not None and result.eviction.dirty_sectors:
                    wb_done = self._writeback(issue, result.eviction)
                    completion = max(completion, wb_done)
            return completion

        completion = issue + L2_HIT_LATENCY
        fetch_sectors: List[int] = []
        pending_writebacks: List[Eviction] = []
        for sector in range(first_sector, last_sector):
            result = bank.access_data(line_key, sector, False, issue)
            if result.merged_done is not None:
                completion = max(completion, result.merged_done)
            elif result.needs_fetch:
                fetch_sectors.append(sector)
            pending_writebacks.extend(result.writebacks)

        if self._observe:
            self.obs.l2_access(issue, partition, miss=bool(fetch_sectors))
        if fetch_sectors:
            self._l2_stats.misses += 1
            ctr_done = 0.0
            if self.mees:
                mee_result = self.mees[partition].on_read_miss(
                    issue, line_addr, local.offset
                )
                ctr_done = self._schedule(issue, mee_result)
                if ctr_done:
                    # Pad generation (AES) starts when the counter
                    # arrives; decryption cannot complete before it.
                    ctr_done += self.config.gpu.hash_latency
            size = len(fetch_sectors) * constants.SECTOR_SIZE
            data_done = self.channels[partition].service(issue, size)
            self._traffic.data_bytes += size
            if self._observe:
                self.obs.traffic(issue, partition, "data", size, False)
            done = max(data_done, ctr_done)
            for sector in fetch_sectors:
                bank.register_fill(line_key, sector, done, issue)
            completion = max(completion, done)
            if self.record_stream:
                self.streams[partition].append(
                    (local.offset, False, self._kernel_idx)
                )

        for eviction in pending_writebacks:
            self._writeback(issue, eviction)
        return completion

    # ------------------------------------------------------------------
    # Write-back path
    # ------------------------------------------------------------------

    def _writeback(self, issue: float, eviction: Eviction) -> float:
        """Process dirty L2 lines reaching memory (iteratively: victim
        insertions may displace further dirty data lines).  Returns the
        completion time of the last data write (store backpressure)."""
        last_done = issue
        queue = deque([eviction])
        while queue:
            ev = queue.popleft()
            key = ev.key
            if not isinstance(key, int):
                continue  # a victim metadata line: already accounted
            phys = key * constants.BLOCK_SIZE
            local = self.mapper.to_local(phys)
            partition = local.partition
            size = ev.dirty_sectors * constants.SECTOR_SIZE
            if size <= 0:
                continue
            done = self.channels[partition].service(issue, size, is_write=True)
            last_done = max(last_done, done)
            self._traffic.data_bytes += size
            self._l2_stats.writebacks += 1
            if self._observe:
                self.obs.traffic(issue, partition, "data", size, True)
            if self.record_stream:
                self.streams[partition].append(
                    (local.offset, True, self._kernel_idx)
                )
            if self.mees:
                mee_result = self.mees[partition].on_writeback(
                    issue, phys, local.offset
                )
                self._schedule(issue, mee_result)
                for disp in mee_result.displaced_data:
                    queue.append(
                        Eviction(
                            key=disp.line_key,
                            dirty_sectors=disp.dirty_sectors,
                            valid_sectors=disp.dirty_sectors,
                        )
                    )
        return last_done

    # ------------------------------------------------------------------
    # Metadata traffic scheduling
    # ------------------------------------------------------------------

    def _schedule(self, issue: float, mee_result: MEEResult) -> float:
        """Place the MEE's DRAM requests on their channels; returns the
        completion time of the latest decrypt-critical transfer."""
        ctr_done = 0.0
        traffic = self._traffic
        observe = self._observe
        for req in mee_result.requests:
            done = self.channels[req.partition].service(
                issue, req.size, req.is_write
            )
            if req.kind == "ctr":
                traffic.counter_bytes += req.size
            elif req.kind == "mac":
                traffic.mac_bytes += req.size
            elif req.kind == "bmt":
                traffic.bmt_bytes += req.size
            elif req.kind == "mispred":
                traffic.misprediction_bytes += req.size
            else:
                traffic.data_bytes += req.size
            if observe:
                self.obs.traffic(issue, req.partition, req.kind, req.size,
                                 req.is_write)
                self.obs.mee_op(req.partition, req.kind, req.is_write,
                                issue, done, critical=req.critical)
            if req.critical:
                ctr_done = max(ctr_done, done)
        return ctr_done

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _final_flush(self, end: float) -> float:
        """Context teardown: dirty data leaves the L2 through the
        secure write path, then dirty metadata drains to DRAM."""
        for partition in range(self.config.gpu.num_partitions):
            for eviction in self.l2[partition].flush():
                self._writeback(end, eviction)
        for mee in self.mees:
            result = MEEResult(requests=mee.flush())
            self._schedule(end, result)
        return end

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def _result(self, workload: Workload, cycles: float) -> RunResult:
        readonly_stats = PredictionStats()
        streaming_stats = PredictionStats()
        shared_reads = 0
        common_hits = 0
        mdc_accesses = 0
        verdicts = 0
        transitions = 0
        for mee in self.mees:
            for name in ("correct", "mp_init", "mp_runtime_read_only",
                         "mp_runtime_non_read_only", "mp_aliasing"):
                setattr(readonly_stats, name,
                        getattr(readonly_stats, name)
                        + getattr(mee.readonly_stats, name))
                setattr(streaming_stats, name,
                        getattr(streaming_stats, name)
                        + getattr(mee.streaming_stats, name))
            shared_reads += mee.shared_counter_reads
            common_hits += mee.common_counter_hits
            mdc_accesses += (mee.caches.counter.accesses
                             + mee.caches.mac.accesses
                             + mee.caches.bmt.accesses)
            verdicts += mee.streaming.verdicts
            transitions += mee.readonly.transitions

        victim_hits = sum(
            bank.victim_hits for part in self.l2 for bank in part.banks
        )
        victim_insertions = sum(
            bank.victim_insertions for part in self.l2 for bank in part.banks
        )
        utilization = (
            sum(ch.utilization(cycles) for ch in self.channels)
            / len(self.channels)
        )
        return RunResult(
            workload=workload.name,
            scheme=self.scheme.scheme,
            cycles=cycles,
            instructions=workload.instructions,
            traffic=self._traffic,
            l2=self._l2_stats,
            dram_utilization=utilization,
            latency=self._latency,
            readonly_stats=readonly_stats,
            streaming_stats=streaming_stats,
            shared_counter_reads=shared_reads,
            common_counter_hits=common_hits,
            mdc_accesses=mdc_accesses,
            victim_hits=victim_hits,
            victim_insertions=victim_insertions,
            stream_verdicts=verdicts,
            readonly_transitions=transitions,
        )
