"""The top-level GPU simulator (the assembly layer).

Trace-driven and cycle-approximate: an SM frontend with bounded
memory-level parallelism issues a workload's access trace into the
:class:`~repro.sim.pipeline.MemoryPipeline` — partitioned L2, per-
partition MEE (which generates security-metadata traffic per the
active scheme) and a bandwidth-limited GDDR channel behind a pluggable
scheduler.  Execution time emerges from the interplay of issue rate,
queueing and decrypt-critical counter fetches — the same contention
mechanism the paper measures on GPGPU-Sim.

This module only *wires* the pipeline (construct components per
``SimConfig``, sequence kernels and host events) and assembles the
:class:`~repro.sim.stats.RunResult`; the request lifecycle itself
lives in :mod:`repro.sim.pipeline`, the scheme behaviour in
:mod:`repro.core.policies`, and the DRAM service discipline in
:mod:`repro.memory.sched`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.address import AddressMapper
from repro.common.config import CORE_EVENT, VALID_CORES, SimConfig
from repro.common.types import PredictionStats
from repro.core.mee import MemoryEncryptionEngine, TruthProvider
from repro.core.victim import VictimController
from repro.memory.dram import DRAMChannel
from repro.memory.l2 import PartitionL2
from repro.memory.sched import build_scheduler
from repro.obs.decisions import NULL_LEDGER
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.perf.hostprof import NULL_PROFILER, HostProfiler
from repro.sim.events import CompletionWindow
from repro.sim.frontend import Frontend, iter_batches
from repro.sim.pipeline import L2_HIT_LATENCY, MemoryPipeline, ObserverHooks
from repro.sim.stats import LatencyStats, RunResult
from repro.workloads.base import HostEvent, Workload

__all__ = ["GPUSimulator", "L2_HIT_LATENCY"]


class GPUSimulator:
    """One simulation instance (one workload x scheme run)."""

    def __init__(
        self,
        config: SimConfig,
        truth: Optional[TruthProvider] = None,
        record_stream: bool = False,
        observer: Optional[Observer] = None,
        profiler: Optional[HostProfiler] = None,
        ledger=None,
    ) -> None:
        self.config = config
        self.scheme = config.scheme
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._observe = self.obs.enabled
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._profile = self.profiler.enabled
        # Decision ledger (decision-granularity provenance): unlike an
        # observer it does NOT force the legacy core — see run().
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        gpu = config.gpu
        if self.ledger.enabled:
            self.ledger.configure(
                gpu.dram_request_overhead, gpu.dram_bytes_per_cycle,
                config.scheme.detectors.blocks_per_chunk,
            )
        self.mapper = AddressMapper(gpu.num_partitions, gpu.interleave_bytes)
        self.channels = [
            DRAMChannel(gpu.dram_bytes_per_cycle, gpu.dram_latency,
                        gpu.dram_request_overhead, gpu.dram_turnaround,
                        partition=p, observer=self.obs,
                        scheduler=build_scheduler(gpu))
            for p in range(gpu.num_partitions)
        ]
        self.l2 = [PartitionL2(gpu, p, observer=self.obs)
                   for p in range(gpu.num_partitions)]

        self.mees: List[MemoryEncryptionEngine] = []
        self.victims: List[VictimController] = []
        if self.scheme.is_secure:
            from repro.metadata.counters import SharedCounter

            shared = SharedCounter()
            for p in range(gpu.num_partitions):
                mee = MemoryEncryptionEngine(p, config, self.mapper, shared,
                                             truth, observer=self.obs,
                                             profiler=profiler,
                                             ledger=self.ledger)
                if self.scheme.l2_victim_cache:
                    victim = VictimController(
                        self.l2[p], self.scheme.victim_missrate_threshold
                    )
                    mee.caches.l2 = self.l2[p]
                    mee.caches.victim_enabled = victim.enabled
                    self.victims.append(victim)
                self.mees.append(mee)

        hooks = ObserverHooks(self.obs) if self._observe else None
        self.pipeline = MemoryPipeline(
            config, self.mapper, self.channels, self.l2, self.mees,
            hooks=hooks, record_stream=record_stream, profiler=profiler,
        )
        self._latency = LatencyStats()

    @property
    def streams(self) -> Dict[int, List[Tuple[int, bool, int]]]:
        """Recorded per-partition (offset, is_write, kernel) streams."""
        return self.pipeline.streams

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        gap: float = 0.001,
        max_inflight: Optional[int] = None,
    ) -> RunResult:
        """Simulate the workload.

        ``max_inflight`` is the calibrated memory-level parallelism of
        this workload (the knob the runner tunes to hit the published
        bandwidth utilisation); ``gap`` adds a per-access compute floor
        and is usually left at its near-zero default — the paper's
        suite is memory bound.

        Dispatches on ``SimConfig.core``: the event core runs kernels
        as batches through :meth:`MemoryPipeline.run_batch` (bit-
        identical results, several times faster); the legacy per-
        access loop remains for ``core="legacy"`` and for observed
        runs, whose hook/event stream is defined access by access.
        A decision ledger does *not* force the fallback — its taps
        fire at decision granularity on both cores.
        """
        core = self.config.core
        if core not in VALID_CORES:
            raise ValueError(
                f"unknown execution core {core!r}; expected one of "
                f"{VALID_CORES} (check SimConfig.core / REPRO_CORE)"
            )
        window = max_inflight or self.config.gpu.max_inflight_requests
        if core == CORE_EVENT and not self._observe:
            return self._run_event(workload, gap, window)
        return self._run_legacy(workload, gap, window)

    def _run_event(self, workload: Workload, gap: float,
                   window_size: int) -> RunResult:
        """The batched event-driven run loop: per kernel, translate +
        classify the whole batch, then advance the completion-window
        event queue access by access with no per-access Python call
        layers (see :meth:`MemoryPipeline.run_batch`)."""
        window = CompletionWindow(window_size, gap)
        pipeline = self.pipeline
        profile = self._profile
        if profile:
            prof = self.profiler
            # .label, not .scheme.value: a custom registry scheme must
            # not collide with its base design's run in the exports.
            prof.begin_run(f"{workload.name}/{self.scheme.label}")

        if self.mees:
            for event in workload.init_copies():
                self._host_copy(event, at_init=True)
        if profile:
            # Host-side copies walk the MEE metadata state.
            prof.mark("metadata")

        latency = self._latency
        for kernel_idx, kernel in iter_batches(workload):
            pipeline.kernel_idx = kernel_idx
            self._kernel_boundary(kernel_idx, kernel.host_events,
                                  window.last_issue)
            if profile:
                prof.mark("metadata")
            pipeline.run_batch(window, kernel.accesses, latency)

        end = window.drain()
        if profile:
            prof.mark("issued")
        end = pipeline.final_flush(end)
        cycles = max(
            end,
            max((ch.next_free + ch.latency for ch in self.channels
                 if ch.stats.requests), default=0.0),
        )
        result = self._result(workload, cycles)
        if profile:
            prof.mark("complete")
            prof.end_run()
        return result

    def _run_legacy(self, workload: Workload, gap: float,
                    window_size: int) -> RunResult:
        """The per-access run loop (``core="legacy"`` and every
        observed run: the observer vocabulary — stall spans, per-
        request lifecycle hooks — is defined at access granularity)."""
        frontend = Frontend(window_size, gap)
        pipeline = self.pipeline
        observe = self._observe
        profile = self._profile
        run_label = f"{workload.name}/{self.scheme.label}"
        if observe:
            self.obs.begin_run(run_label, self.config.gpu.num_partitions)
        if profile:
            prof = self.profiler
            prof.begin_run(run_label)

        if self.mees:
            for event in workload.init_copies():
                self._host_copy(event, at_init=True)
        if profile:
            # Host-side copies walk the MEE metadata state.
            prof.mark("metadata")

        prev_issue = 0.0
        for kernel_idx, kernel in enumerate(workload.kernels):
            pipeline.kernel_idx = kernel_idx
            self._kernel_boundary(kernel_idx, kernel.host_events,
                                  frontend.last_issue)
            if profile:
                prof.mark("metadata")
            if observe:
                self.obs.kernel(kernel_idx, frontend.last_issue)
            for addr, is_write, nsectors in kernel.accesses:
                issue = frontend.issue()
                if observe:
                    if frontend.last_stall > 0.0:
                        # Clamp to the stall's non-overlapping portion:
                        # with a near-zero issue gap every queued access
                        # nominally waits from cycle ~0, but only the
                        # advance past the previous issue is new stall.
                        start = max(issue - frontend.last_stall, prev_issue)
                        if issue > start:
                            self.obs.stall(start, issue)
                    prev_issue = issue
                if profile:
                    prof.mark("issued")
                completion = pipeline.access(issue, addr, is_write,
                                             nsectors).completion
                if not is_write:
                    self._latency.record(completion - issue)
                    if observe:
                        self.obs.read_latency(issue, completion - issue)
                frontend.complete(completion)
                if profile:
                    prof.mark("complete")

        end = frontend.drain()
        if profile:
            prof.mark("issued")
        end = pipeline.final_flush(end)
        cycles = max(
            end,
            max((ch.next_free + ch.latency for ch in self.channels
                 if ch.stats.requests), default=0.0),
        )
        result = self._result(workload, cycles)
        if profile:
            prof.mark("complete")
            prof.end_run()
        if observe:
            self.obs.end_run(result)
        return result

    # ------------------------------------------------------------------
    # Kernel boundaries and host events
    # ------------------------------------------------------------------

    def _kernel_boundary(self, kernel_idx: int, events: List[HostEvent],
                         cycle: float = 0.0) -> None:
        if self.mees:
            for event in events:
                if event.kind == "copy":
                    self._host_copy(event, at_init=False, cycle=cycle)
                elif event.kind == "readonly_reset":
                    self._reset_api(event, cycle=cycle)
                else:
                    raise ValueError(f"unknown host event kind: {event.kind}")
            for mee in self.mees:
                mee.on_kernel_boundary(kernel_idx, cycle)
        for victim in self.victims:
            victim.on_kernel_boundary()

    def _host_copy(self, event: HostEvent, at_init: bool,
                   cycle: float = 0.0) -> None:
        for p, mee in enumerate(self.mees):
            lo, hi = self.mapper.local_span(event.start, event.size, p)
            if hi > lo:
                mee.on_host_copy(lo, hi, at_init=at_init, cycle=cycle)

    def _reset_api(self, event: HostEvent, cycle: float = 0.0) -> None:
        for p, mee in enumerate(self.mees):
            lo, hi = self.mapper.local_span(event.start, event.size, p)
            if hi > lo:
                mee.input_read_only_reset(lo, hi, cycle=cycle)

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def _result(self, workload: Workload, cycles: float) -> RunResult:
        readonly_stats = PredictionStats()
        streaming_stats = PredictionStats()
        shared_reads = 0
        common_hits = 0
        mdc_accesses = 0
        verdicts = 0
        transitions = 0
        for mee in self.mees:
            readonly_stats.merge(mee.readonly_stats)
            streaming_stats.merge(mee.streaming_stats)
            shared_reads += mee.shared_counter_reads
            common_hits += mee.common_counter_hits
            mdc_accesses += (mee.caches.counter.accesses
                             + mee.caches.mac.accesses
                             + mee.caches.bmt.accesses)
            verdicts += mee.streaming.verdicts
            transitions += mee.readonly.transitions

        victim_hits = sum(
            bank.victim_hits for part in self.l2 for bank in part.banks
        )
        victim_insertions = sum(
            bank.victim_insertions for part in self.l2 for bank in part.banks
        )
        utilization = (
            sum(ch.utilization(cycles) for ch in self.channels)
            / len(self.channels)
        )
        return RunResult(
            workload=workload.name,
            scheme=self.scheme.scheme,
            cycles=cycles,
            instructions=workload.instructions,
            traffic=self.pipeline.traffic,
            l2=self.pipeline.l2_stats,
            dram_utilization=utilization,
            latency=self._latency,
            readonly_stats=readonly_stats,
            streaming_stats=streaming_stats,
            shared_counter_reads=shared_reads,
            common_counter_hits=common_hits,
            mdc_accesses=mdc_accesses,
            victim_hits=victim_hits,
            victim_insertions=victim_insertions,
            stream_verdicts=verdicts,
            readonly_transitions=transitions,
        )
