"""Fig. 16: using the L2 as a victim cache for security metadata.

Paper: +0.65% average, up to +4% (lbm) and +3.4% (sad) — a small,
targeted win for workloads whose L2 thrashes (sampled miss rate >90%).
Runs at full scale: the effect requires footprints that genuinely
exceed the 3 MB L2.
"""

from repro.common.types import Scheme
from repro.sim.stats import mean

from conftest import once

#: The workloads Fig. 16's effect concentrates on, plus controls.
WORKLOADS = ["lbm", "sad", "fdtd2d", "bfs", "mri-gridding", "histo"]


def run_fig16(runner):
    rows = {}
    for name in WORKLOADS:
        base = runner.baseline(name)
        shm = runner.run(name, Scheme.SHM)
        vl2 = runner.run(name, Scheme.SHM_VL2)
        rows[name] = {
            "shm": shm.normalized_ipc(base),
            "shm_vl2": vl2.normalized_ipc(base),
            "victim_hits": vl2.victim_hits,
            "victim_insertions": vl2.victim_insertions,
        }
    return rows


def test_fig16_victim_cache(benchmark, fullscale_runner):
    rows = once(benchmark, run_fig16, fullscale_runner)
    print("\nFig. 16: L2 as a victim cache for metadata")
    for name, row in rows.items():
        delta = row["shm_vl2"] - row["shm"]
        print(f"  {name:14s} shm={row['shm']:.3f} vl2={row['shm_vl2']:.3f} "
              f"delta={100 * delta:+.2f}pp hits={row['victim_hits']}")

    deltas = {name: row["shm_vl2"] - row["shm"] for name, row in rows.items()}

    # Never a meaningful loss (the trigger only fires when the L2 is
    # useless for data anyway).
    assert all(d > -0.02 for d in deltas.values())

    # A positive average gain, concentrated in the thrashing workloads.
    assert mean(deltas.values()) > -0.002
    assert max(deltas.values()) > 0.003

    # The mechanism engaged: victim lines were parked and re-used
    # somewhere in the suite.
    assert sum(r["victim_hits"] for r in rows.values()) > 0
