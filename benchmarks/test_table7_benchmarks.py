"""Table VII: the benchmark suite and its calibrated characteristics.

Checks that every synthetic benchmark exists, uses the published memory
spaces and that the calibrated unprotected run lands near the published
bandwidth utilisation.
"""

import pytest

from repro.common.types import MemorySpace
from repro.workloads.suite import BENCHMARK_NAMES, build_suite

from conftest import bench_scale, once

#: Workloads whose utilisation calibration we spot-check end to end
#: (checking all 16 belongs to fig12's bench, which shares the runs).
SPOT_CHECK = ["atax", "fdtd2d", "histo", "lbm"]


def test_table7_suite_characteristics(benchmark, runner):
    suite = once(benchmark, build_suite, bench_scale())
    assert set(suite) == set(BENCHMARK_NAMES)
    for name, workload in suite.items():
        assert MemorySpace.CONSTANT in workload.spaces, name
    assert MemorySpace.TEXTURE in suite["kmeans"].spaces
    assert MemorySpace.TEXTURE in suite["sad"].spaces

    print("\nTable VII (measured / target bandwidth utilisation):")
    for name in SPOT_CHECK:
        base = runner.baseline(name)
        target = runner.workload(name).bandwidth_utilization
        measured = base.dram_utilization
        print(f"  {name:14s} target={target:5.2f} measured={measured:5.2f}")
        assert measured == pytest.approx(target, rel=0.30), name
