"""Fig. 5: fraction of off-chip accesses to streaming / read-only data.

Paper shape: fdtd2d is near-perfect (99.87% read-only, 99.35%
streaming); matrix/streaming kernels (atax, mvt, kmeans, streamcluster)
are high on both; graph/scatter workloads (bfs, mri-gridding) are low.
"""

from repro.eval.experiments import fig5_access_ratios
from repro.eval.reporting import format_table

from conftest import once


def test_fig5_access_ratios(benchmark, runner):
    result = once(benchmark, fig5_access_ratios, runner)
    print("\n" + format_table(result, percent=True,
                              title="Fig. 5: streaming / read-only ratios"))
    stream = result.series["streaming"]
    readonly = result.series["read_only"]

    # fdtd2d: the paper's flagship streaming + read-only case.
    assert stream["fdtd2d"] > 0.95
    assert readonly["fdtd2d"] > 0.95

    # Streaming-heavy suite members.
    for name in ("atax", "mvt", "kmeans", "streamcluster"):
        assert stream[name] > 0.8, name
        assert readonly[name] > 0.8, name

    # Random/scatter workloads sit at the other end.
    assert stream["bfs"] < 0.4
    assert stream["mri-gridding"] < 0.55

    # The suite spans the spectrum (the point of Fig. 5).
    assert max(stream.values()) - min(stream.values()) > 0.5
    assert max(readonly.values()) - min(readonly.values()) > 0.3
