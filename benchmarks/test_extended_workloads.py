"""Beyond the paper: the adaptive design on modern workload classes.

The paper's motivation names cloud ML and analytics; this bench runs
SHM on transformer inference, PageRank and radix sort (built on the
same generator substrate) and checks the adaptive behaviour carries
over: read-only/streaming-heavy workloads ride the fast paths, the
freshness-heavy sort degrades gracefully to PSSM-level behaviour.
"""

from repro.common.types import Scheme
from repro.sim.runner import Runner
from repro.workloads.extended import EXTENDED_NAMES, build_extended

from conftest import bench_scale, once


def run_extended():
    runner = Runner(scale=bench_scale())
    rows = {}
    for name in EXTENDED_NAMES:
        runner.add_workload(build_extended(name, bench_scale()))
        base = runner.baseline(name)
        rows[name] = {
            scheme.value: runner.run(name, scheme).normalized_ipc(base)
            for scheme in (Scheme.NAIVE, Scheme.PSSM, Scheme.SHM)
        }
        rows[name]["shared_reads"] = runner.run(
            name, Scheme.SHM).shared_counter_reads
    return rows


def test_extended_workloads(benchmark):
    rows = once(benchmark, run_extended)
    print("\nExtended workloads (normalised IPC):")
    for name, row in rows.items():
        print(f"  {name:18s} naive={row['naive']:.3f} pssm={row['pssm']:.3f} "
              f"shm={row['shm']:.3f} shared-ctr-reads={row['shared_reads']:,}")

    for name, row in rows.items():
        assert row["naive"] <= row["pssm"] + 0.02, name
        assert row["shm"] >= row["pssm"] - 0.05, name

    # The ML case is SHM's showcase.
    tr = rows["transformer-infer"]
    assert tr["shm"] > tr["pssm"]
    assert 1 - tr["shm"] < 0.10
