"""Tables I and II: security mechanisms per memory space / data type.

Static tables; the bench regenerates and checks them.
"""

from repro.common.types import Mechanism, MemorySpace, required_mechanisms

from conftest import once

C = Mechanism.CONFIDENTIALITY
I = Mechanism.INTEGRITY
F = Mechanism.FRESHNESS

TABLE_I = {
    MemorySpace.REGISTER: Mechanism.NONE,
    MemorySpace.LOCAL: C | I | F,
    MemorySpace.SHARED: Mechanism.NONE,
    MemorySpace.GLOBAL: C | I | F,
    MemorySpace.CONSTANT: C | I,
    MemorySpace.TEXTURE: C | I,
}

TABLE_II = {
    ("input", True): C | I,
    ("output", False): C | I | F,
    ("in-flight", False): C | I | F,
}


def build_tables():
    table1 = {space: required_mechanisms(space) for space in TABLE_I}
    table2 = {
        key: required_mechanisms(MemorySpace.GLOBAL, read_only=read_only)
        for key, read_only in zip(TABLE_II, [True, False, False])
    }
    return table1, table2


def test_table1_and_2_mechanisms(benchmark):
    table1, table2 = once(benchmark, build_tables)
    assert table1 == TABLE_I
    for key, expected in TABLE_II.items():
        assert table2[key] == expected
    print("\nTable I (mechanisms per memory space):")
    for space, mech in table1.items():
        print(f"  {space.value:10s} -> {mech}")
