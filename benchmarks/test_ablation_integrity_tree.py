"""Ablation: BMT vs SGX-style counter tree (integrity-tree independence).

Section II-B: "our proposed schemes are independent upon the integrity
tree implementation".  This bench runs SHM over both trees and checks
that (a) the adaptive design works unchanged, and (b) the arity-8
eager-update counter tree costs more tree traffic than the arity-16
lazy BMT — the reason the paper evaluates with a BMT.
"""

from repro.common.types import Scheme
from repro.sim.stats import mean

from conftest import once

WORKLOADS = ["lbm", "histo", "cfd", "srad"]


def run_ablation(runner):
    rows = {}
    for name in WORKLOADS:
        base = runner.baseline(name)
        bmt = runner.run(name, Scheme.SHM)
        ctree = runner.run(name, Scheme.SHM, integrity_tree="counter_tree")
        rows[name] = {
            "bmt_ipc": bmt.normalized_ipc(base),
            "ctree_ipc": ctree.normalized_ipc(base),
            "bmt_bytes": bmt.traffic.bmt_bytes,
            "ctree_bytes": ctree.traffic.bmt_bytes,
        }
    return rows


def test_ablation_integrity_tree(benchmark, runner):
    rows = once(benchmark, run_ablation, runner)
    print("\nAblation: integrity tree (BMT vs SGX-style counter tree)")
    for name, row in rows.items():
        print(f"  {name:8s} ipc bmt={row['bmt_ipc']:.3f} "
              f"ctree={row['ctree_ipc']:.3f} | tree bytes "
              f"bmt={row['bmt_bytes']:,} ctree={row['ctree_bytes']:,}")

    # The adaptive schemes run on either tree with comparable results.
    gap = mean(abs(r["bmt_ipc"] - r["ctree_ipc"]) for r in rows.values())
    assert gap < 0.05

    # The deeper, eagerly-updated counter tree moves at least as many
    # tree bytes as the BMT on write-containing workloads.
    assert sum(r["ctree_bytes"] for r in rows.values()) >= \
        sum(r["bmt_bytes"] for r in rows.values())
