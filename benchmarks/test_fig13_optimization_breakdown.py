"""Fig. 13: contribution of each optimisation, added one at a time.

Paper: PSSM -> +common counters (+1.2pp) -> read-only optimisation
(+2.5pp over PSSM) -> dual-granularity MAC (the bulk) -> SHM+Cctr
(+0.4pp over SHM).
"""

from repro.eval.experiments import fig13_optimization_breakdown
from repro.eval.reporting import format_overheads
from repro.sim.stats import mean

from conftest import once


def test_fig13_optimization_breakdown(benchmark, runner):
    result = once(benchmark, fig13_optimization_breakdown, runner)
    print("\n" + format_overheads(result,
                                  title="Fig. 13: optimisation breakdown"))
    avg = {label: mean(series.values())
           for label, series in result.series.items()}

    # Each addition helps (or at worst is neutral) on average.
    assert avg["pssm_ctr"] >= avg["pssm"] - 0.002
    assert avg["shm_readonly"] >= avg["pssm"] - 0.002
    assert avg["shm"] > avg["shm_readonly"]
    assert avg["shm_cctr"] >= avg["shm"] - 0.002

    # The dual-granularity MAC is the largest single contributor,
    # exactly as the paper observes.
    gain_readonly = avg["shm_readonly"] - avg["pssm"]
    gain_dualmac = avg["shm"] - avg["shm_readonly"]
    assert gain_dualmac > gain_readonly

    # The read-only optimisation shows most on read-only-heavy
    # workloads (the paper highlights kmeans).
    ro = result.series["shm_readonly"]
    ps = result.series["pssm"]
    assert ro["kmeans"] >= ps["kmeans"] - 0.001
    assert ro["fdtd2d"] >= ps["fdtd2d"] - 0.001
