"""Ablations: MDC capacity and chunk-size design-space sweeps.

The paper fixes the MDCs at 2 KB each (Table VI) and the chunk size at
4 KB with K = 32 (Section IV-C).  These sweeps show both choices sit on
sensible points of their curves.
"""

from repro.eval.experiments import ablation_chunk_size, ablation_mdc_size
from repro.eval.reporting import format_overheads
from repro.sim.stats import mean

from conftest import once

WORKLOADS = ["fdtd2d", "kmeans", "bfs", "histo"]


def test_ablation_mdc_size(benchmark, runner):
    result = once(benchmark, ablation_mdc_size, runner, WORKLOADS)
    print("\n" + format_overheads(
        result, title="Ablation: MDC capacity (PSSM, per-partition)"
    ))
    avg = {label: mean(series.values())
           for label, series in result.series.items()}
    # Bigger metadata caches never hurt.
    assert avg["mdc_2kb"] >= avg["mdc_1kb"] - 0.005
    assert avg["mdc_8kb"] >= avg["mdc_2kb"] - 0.005


def test_ablation_chunk_size(benchmark, runner):
    result = once(benchmark, ablation_chunk_size, runner, WORKLOADS)
    print("\n" + format_overheads(
        result, title="Ablation: dual-granularity chunk size (SHM)"
    ))
    avg = {label: mean(series.values())
           for label, series in result.series.items()}
    # All chunk sizes function; the paper's 4 KB is competitive
    # (within half a point of the best size on average).
    best = max(avg.values())
    assert avg["chunk_4kb"] >= best - 0.005
