"""Table IX: hardware storage overhead of the two detectors.

Paper: read-only predictor 128 B, streaming predictor 256 B, 8 MATs of
71 bits each; 5,460 B (5.33 KB) total across 12 partitions.
"""

import pytest

from repro.eval.experiments import table9_hardware_overhead

from conftest import once


def test_table9_hardware_overhead(benchmark):
    hw = once(benchmark, table9_hardware_overhead)
    assert hw["readonly_predictor_bytes"] == 128
    assert hw["streaming_predictor_bytes"] == 256
    assert hw["tracker_bits_each"] == 71
    assert hw["trackers"] == 8
    assert hw["total_bytes"] == pytest.approx(5460, abs=10)
    print("\nTable IX (hardware overhead):")
    for key, value in hw.items():
        print(f"  {key:28s} {value}")
