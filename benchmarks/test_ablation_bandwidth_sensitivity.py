"""Ablation: secure-memory overhead vs bandwidth utilisation.

Same address stream, swept intensity: the naive design's pain must grow
with utilisation (the paper's core observation about which workloads
suffer), while SHM stays flat.
"""

from repro.eval.experiments import ablation_bandwidth_sensitivity
from repro.eval.reporting import format_overheads

from conftest import once


def test_ablation_bandwidth_sensitivity(benchmark, runner):
    result = once(benchmark, ablation_bandwidth_sensitivity, runner, "kmeans")
    print("\n" + format_overheads(
        result, title="Ablation: overhead vs bandwidth utilisation (kmeans)"
    ))
    naive = list(result.series["naive"].values())  # ordered by util
    shm = list(result.series["shm"].values())

    # Naive overhead grows monotonically-ish with utilisation and is
    # much worse at the top than at the bottom.
    assert naive[-1] < naive[0]  # normalised IPC falls as util rises
    assert (1 - naive[-1]) > 2.5 * (1 - naive[0])

    # SHM stays within a few points across the whole sweep.
    assert (1 - min(shm)) < 0.08

    # At every point SHM beats naive.
    for n, s in zip(naive, shm):
        assert s > n
