"""Fig. 14: security-metadata bandwidth normalised to data bandwidth.

Paper averages: Naive 189.07%, PSSM 17.1%, SHM_readOnly 13.2%,
SHM 5.95%; fdtd2d under SHM reaches 0.78%.
"""

from repro.eval.experiments import fig14_bandwidth_overhead
from repro.eval.reporting import format_table
from repro.sim.stats import mean

from conftest import once


def test_fig14_bandwidth_overhead(benchmark, runner):
    result = once(benchmark, fig14_bandwidth_overhead, runner)
    print("\n" + format_table(result, percent=True,
                              title="Fig. 14: metadata bandwidth overhead"))
    avg = {label: mean(series.values())
           for label, series in result.series.items()}

    # Ordering across the designs.
    assert avg["naive"] > avg["common_ctr"] > avg["pssm"]
    assert avg["pssm"] > avg["shm_readonly"] > avg["shm"]

    # Naive metadata traffic is of the same order as the data itself
    # (the paper's 1.89x average; random workloads far exceed 1x).
    assert avg["naive"] > 0.5
    assert max(result.series["naive"].values()) > 1.0

    # SHM squeezes the average to a small fraction (the paper's 5.95%;
    # short traces over-weight the detectors' one-time warm-up costs,
    # so allow head-room at reduced REPRO_BENCH_SCALE).
    assert avg["shm"] < 0.16
    # ...and on the streaming majority of the suite it is tiny.
    below_5pct = sum(1 for v in result.series["shm"].values() if v < 0.05)
    assert below_5pct >= len(result.series["shm"]) // 2

    # fdtd2d under SHM: near-zero, the paper's flagship number.
    assert result.series["shm"]["fdtd2d"] < 0.02
