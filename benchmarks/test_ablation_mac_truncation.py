"""Ablation: PSSM's MAC truncation vs SHM's dual granularity.

Section III-C: truncating the MAC to 4 B halves MAC bandwidth but
breaks the birthday bound for a 4 GB memory; SHM instead keeps the full
8 B MAC and amortises it per chunk.  This bench measures both options'
MAC traffic and checks the security verdicts.
"""

from repro.common.types import Scheme
from repro.eval.security_analysis import truncation_analysis
from repro.sim.stats import mean

from conftest import once

WORKLOADS = ["fdtd2d", "kmeans", "bfs", "histo"]


def run_ablation(runner):
    rows = {}
    for name in WORKLOADS:
        pssm = runner.run(name, Scheme.PSSM)
        trunc = runner.run(name, Scheme.PSSM, mac_size=4)
        shm = runner.run(name, Scheme.SHM)
        data = pssm.traffic.data_bytes or 1
        rows[name] = {
            "pssm_8B": pssm.traffic.mac_bytes / data,
            "pssm_4B": trunc.traffic.mac_bytes / trunc.traffic.data_bytes,
            "shm_dual": (shm.traffic.mac_bytes + shm.traffic.misprediction_bytes)
            / shm.traffic.data_bytes,
        }
    return rows


def test_ablation_mac_truncation(benchmark, runner):
    rows = once(benchmark, run_ablation, runner)
    print("\nAblation: MAC bandwidth (fraction of data bytes)")
    for name, row in rows.items():
        print(f"  {name:10s} 8B={row['pssm_8B']:.2%} 4B={row['pssm_4B']:.2%} "
              f"dual={row['shm_dual']:.2%}")

    # Truncation reduces MAC traffic...
    for name, row in rows.items():
        assert row["pssm_4B"] < row["pssm_8B"], name

    # ...but fails the birthday bound, while the chunk MAC does not.
    analysis = truncation_analysis()
    assert not analysis["designs"]["pssm_truncated_4B"]["safe"]
    assert analysis["designs"]["shm_chunk_8B"]["safe"]

    # On streaming workloads the dual-granularity MAC beats even the
    # insecure truncation - the paper's central bandwidth argument.
    for name in ("fdtd2d", "kmeans"):
        assert rows[name]["shm_dual"] < rows[name]["pssm_4B"], name
