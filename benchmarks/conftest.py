"""Shared fixtures for the per-figure benchmark harness.

All figure benches draw from one process-wide runner so each
(workload, scheme) pair is simulated exactly once per session.  The
simulation scale is controlled with ``REPRO_BENCH_SCALE`` (default
0.25; the paper-style run uses 1.0 and takes correspondingly longer).
"""

import os

import pytest

from repro.sim.runner import Runner

DEFAULT_SCALE = 0.25


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def runner():
    return Runner(scale=bench_scale())


@pytest.fixture(scope="session")
def fullscale_runner():
    """Scale-1.0 runner for experiments that need realistic footprints
    (the L2 victim cache only matters when the L2 genuinely thrashes)."""
    return Runner(scale=max(1.0, bench_scale()))


def once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
