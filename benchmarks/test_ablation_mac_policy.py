"""Ablation: the dual-granularity MAC conflict remedy (Section IV-C).

The paper picks "check the other MAC on failure" (recheck) over
"always update both MACs" (update_both), arguing the latter trades
write traffic for read traffic.  Both are implemented; this bench
quantifies the choice.
"""

from repro.eval.experiments import ablation_mac_conflict_policy
from repro.eval.reporting import format_overheads
from repro.sim.stats import mean

from conftest import once

WORKLOADS = ["fdtd2d", "lbm", "histo", "streamcluster", "bfs"]


def test_ablation_mac_conflict_policy(benchmark, runner):
    result = once(benchmark, ablation_mac_conflict_policy, runner, WORKLOADS)
    print("\n" + format_overheads(
        result, title="Ablation: MAC conflict policy (recheck vs update both)"
    ))
    recheck = mean(result.series["recheck"].values())
    update_both = mean(result.series["update_both"].values())

    # The paper's choice is at least as good on average: update_both
    # re-adds the block-MAC write traffic the design tries to avoid.
    assert recheck >= update_both - 0.005

    # On write-heavy streaming workloads the difference is visible.
    assert result.series["recheck"]["lbm"] >= \
        result.series["update_both"]["lbm"] - 0.005
