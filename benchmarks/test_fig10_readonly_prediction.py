"""Fig. 10: read-only prediction breakdown.

Paper: 89.31% average accuracy; MP_Init dominates the mispredictions
and MP_Aliasing is negligible.
"""

from repro.eval.experiments import fig10_readonly_prediction
from repro.eval.reporting import format_table
from repro.sim.stats import mean

from conftest import once


def test_fig10_readonly_prediction(benchmark, runner):
    result = once(benchmark, fig10_readonly_prediction, runner)
    print("\n" + format_table(result, percent=True,
                              title="Fig. 10: read-only prediction breakdown"))
    correct = result.series["correct"]
    init = result.series["mp_init"]
    aliasing = result.series["mp_aliasing"]

    # Average accuracy in the paper's ballpark (89.3%).
    assert mean(correct.values()) > 0.80

    # Initialisation mispredictions dominate aliasing ones.
    assert mean(init.values()) >= mean(aliasing.values())

    # Aliasing is negligible (the 1024-entry vector is plenty).
    assert mean(aliasing.values()) < 0.05

    # Pure streaming read-only workloads predict near-perfectly.
    assert correct["fdtd2d"] > 0.95
    assert correct["kmeans"] > 0.95
