"""Ablation: MAT count sensitivity (Section IV-C / SHM_upper_bound).

The paper uses 8 MATs per partition and shows (via SHM_upper_bound)
that unlimited trackers buy only ~1.3pp more.  This bench sweeps the
MAT count to show the knee.
"""

from repro.eval.experiments import ablation_detector_sizing
from repro.eval.reporting import format_overheads
from repro.sim.stats import mean

from conftest import once

WORKLOADS = ["fdtd2d", "kmeans", "bfs", "histo"]


def test_ablation_detector_sizing(benchmark, runner):
    result = once(benchmark, ablation_detector_sizing, runner, WORKLOADS,
                  [2, 8, 32])
    print("\n" + format_overheads(
        result, title="Ablation: MAT count (2 / 8 / 32 per partition)"
    ))
    avg = {label: mean(series.values())
           for label, series in result.series.items()}

    # More trackers never hurt meaningfully.
    assert avg["mats_8"] >= avg["mats_2"] - 0.01
    assert avg["mats_32"] >= avg["mats_8"] - 0.01

    # Diminishing returns: 8 -> 32 buys less than 2 -> 8 added, OR both
    # deltas are already in the noise (the paper's point: 8 suffices).
    delta_small = avg["mats_8"] - avg["mats_2"]
    delta_large = avg["mats_32"] - avg["mats_8"]
    assert delta_large <= max(delta_small, 0.01)
