"""Fig. 15: normalised energy per instruction.

Paper: Naive 215.06% -> SHM 106.09% (i.e. 6.09% energy overhead over
the unprotected GPU).
"""

from repro.eval.experiments import fig15_energy
from repro.eval.reporting import format_table
from repro.sim.stats import mean

from conftest import once


def test_fig15_energy(benchmark, runner):
    result = once(benchmark, fig15_energy, runner)
    print("\n" + format_table(result, percent=True,
                              title="Fig. 15: normalised energy/instruction"))
    avg = {label: mean(series.values())
           for label, series in result.series.items()}

    # Every secure design costs energy; the ordering tracks Fig. 12.
    for label in avg:
        assert avg[label] > 1.0, label
    assert avg["naive"] > avg["common_ctr"] > avg["pssm"] > avg["shm"]

    # Naive pays a heavy premium; SHM stays within ~10% of baseline.
    assert avg["naive"] > 1.15
    assert avg["shm"] < 1.10

    # SHM recovers most of the energy naive loses (paper: 215% -> 106%).
    recovered = (avg["naive"] - avg["shm"]) / (avg["naive"] - 1.0)
    assert recovered > 0.6
