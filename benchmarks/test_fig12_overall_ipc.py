"""Fig. 12: normalised IPC of the main secure-memory designs.

Paper averages (overhead = 1 - normalised IPC): Naive 53.9%,
Common_ctr 49.4%, PSSM 18.6%, SHM 8.09%, SHM_upper_bound 6.76%.
Absolute levels depend on the memory-system substrate; the bench
asserts the ordering and the rough factors (see EXPERIMENTS.md).
"""

from repro.common.types import Scheme
from repro.eval.experiments import fig12_overall_ipc
from repro.eval.reporting import format_overheads
from repro.sim.stats import mean

from conftest import once


def test_fig12_overall_ipc(benchmark, runner):
    result = once(benchmark, fig12_overall_ipc, runner)
    print("\n" + format_overheads(result,
                                  title="Fig. 12: performance overheads"))
    avg = {label: mean(series.values())
           for label, series in result.series.items()}

    # Ordering: every optimisation step helps on average.
    assert avg["naive"] < avg["common_ctr"] < avg["pssm"] < avg["shm"]
    assert avg["shm_upper_bound"] >= avg["shm"] - 0.005

    # Rough factors: naive loses a lot; SHM keeps overhead low.
    assert 1 - avg["naive"] > 0.20
    assert 1 - avg["shm"] < 0.10
    # SHM at least halves PSSM's remaining overhead on average.
    assert (1 - avg["shm"]) < 0.7 * (1 - avg["pssm"])
    # The realised design sits close to the idealised upper bound
    # (the paper's 8.09% vs 6.76% point).
    assert avg["shm_upper_bound"] - avg["shm"] < 0.05

    # Per-workload: bandwidth-hungry workloads show the largest naive
    # pain, as in the paper.
    naive = result.series["naive"]
    assert naive["fdtd2d"] < naive["atax"]
    assert naive["lbm"] < naive["atax"]
