"""Fig. 11: streaming-pattern prediction breakdown.

Paper: 83.36% average accuracy; some benchmarks suffer initialisation
mispredictions, others runtime pattern changes; aliasing is small.
"""

from repro.eval.experiments import fig11_streaming_prediction
from repro.eval.reporting import format_table
from repro.sim.stats import mean

from conftest import once


def test_fig11_streaming_prediction(benchmark, runner):
    result = once(benchmark, fig11_streaming_prediction, runner)
    print("\n" + format_table(result, percent=True,
                              title="Fig. 11: streaming prediction breakdown"))
    correct = result.series["correct"]

    # Streaming workloads predict very well...
    for name in ("fdtd2d", "kmeans", "streamcluster"):
        assert correct[name] > 0.85, name

    # ...while random-dominated ones drag the average down, exactly as
    # in the paper (their worst cases sit around 40-60%).
    assert correct["bfs"] < correct["fdtd2d"]

    # Average in a sane band around the paper's 83%.
    assert 0.55 < mean(correct.values()) <= 1.0

    # Aliasing is a minor contributor overall.
    assert mean(result.series["mp_aliasing"].values()) < 0.10

    # All five categories are reported.
    assert set(result.series) == {
        "correct", "mp_init", "mp_runtime_read_only",
        "mp_runtime_non_read_only", "mp_aliasing",
    }
