#!/usr/bin/env python
"""Attack detection demo on the functional secure-memory device.

Walks through the physical attacks of Section II-B with *real*
cryptography and shows each being caught (or, in the deliberately
vulnerable configuration, succeeding):

1. passive snooping      -> defeated by counter-mode encryption
2. memory tampering      -> detected by the stateful MAC
3. replay (data + MAC)   -> detected by the stateful MAC's counter
4. replay incl. counters -> detected by the Bonsai Merkle Tree
5. cross-kernel replay on a reused read-only input (Section III-B):
   vulnerable WITHOUT the shared-counter reset, detected WITH the
   InputReadOnlyReset API.
"""

from repro.common import constants
from repro.common.types import IntegrityError, ReplayAttackError, TamperError
from repro.core.functional import SecureMemoryDevice
from repro.crypto.keys import KeyGenerator

BLOCK = constants.BLOCK_SIZE


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def expect_detection(action, label: str) -> None:
    try:
        action()
    except IntegrityError as exc:
        print(f"  DETECTED ({type(exc).__name__}): {label}")
    else:
        raise SystemExit(f"  SECURITY FAILURE: {label} went undetected!")


def main() -> None:
    keys = KeyGenerator().context_keys(context_id=0)
    device = SecureMemoryDevice(keys, size_bytes=8 * 1024 * 1024)

    banner("1. Passive snooping (confidentiality)")
    secret = b"model-weights-v1" * 8
    device.host_copy(0, secret, read_only=False)
    snooped, _ = device.raw_block(0)
    print(f"  plaintext : {secret[:16]!r}...")
    print(f"  on the bus: {snooped[:16].hex()}...  (ciphertext)")
    assert snooped != secret

    banner("2. Memory tampering (integrity)")
    ct, mac = device.raw_block(0)
    flipped = bytes([ct[0] ^ 0x80]) + ct[1:]
    device.raw_overwrite(0, flipped, mac=mac)
    expect_detection(lambda: device.read(0), "single-bit flip in ciphertext")
    device.raw_overwrite(0, ct, mac=mac)  # restore

    banner("3. Replay of (ciphertext, MAC) (freshness via stateful MAC)")
    device.write(0, b"balance=100 EUR " * 8)
    stale_ct, stale_mac = device.raw_block(0)
    device.write(0, b"balance=001 EUR " * 8)
    device.raw_overwrite(0, stale_ct, mac=stale_mac)
    expect_detection(lambda: device.read(0), "stale (data, MAC) pair replayed")

    banner("4. Replay including the counter line (freshness via BMT)")
    device.write(0, b"state-version-1 " * 8)
    stale_ct, stale_mac = device.raw_block(0)
    line_key, counter_snapshot = device.raw_counter_snapshot(0)
    device.write(0, b"state-version-2 " * 8)
    device.raw_overwrite(0, stale_ct, mac=stale_mac)
    device.raw_counter_restore(line_key, counter_snapshot)
    expect_detection(lambda: device.read(0),
                     "stale (data, MAC, counter) triple replayed")

    banner("5. Cross-kernel replay on a reused read-only input")
    input_addr = 4 * device.region_size
    device.host_copy(input_addr, b"K1-batch-000-img" * 8, read_only=True)
    stale_ct, stale_mac = device.raw_block(input_addr)

    print("  (a) reuse WITHOUT the reset API - the vulnerable pattern:")
    device.host_copy(input_addr, b"K2-batch-001-img" * 8, read_only=True)
    device.raw_overwrite(input_addr, stale_ct, mac=stale_mac)
    replayed = device.read(input_addr)
    print(f"      replay SUCCEEDED: kernel 2 silently consumed "
          f"{replayed[:16]!r}")

    print("  (b) reuse WITH InputReadOnlyReset (the paper's defence):")
    device.host_copy(input_addr, b"K2-batch-001-img" * 8, read_only=True)
    stale_ct, stale_mac = device.raw_block(input_addr)
    new_shared = device.input_read_only_reset(input_addr, device.region_size)
    print(f"      shared counter raised to {new_shared}")
    device.host_copy(input_addr, b"K3-batch-002-img" * 8, read_only=True)
    device.raw_overwrite(input_addr, stale_ct, mac=stale_mac)
    expect_detection(lambda: device.read(input_addr),
                     "cross-kernel replay of the old input")

    print(f"\nDone. {device.detected_attacks} attacks detected, "
          f"{device.verified_reads} reads verified.")


if __name__ == "__main__":
    main()
