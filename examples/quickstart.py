#!/usr/bin/env python
"""Quickstart: simulate secure-memory schemes on one GPU workload.

Builds the paper's fdtd2d benchmark model, runs the main Table VIII
designs through the trace-driven simulator, and prints the normalised
IPC and metadata-bandwidth overhead of each — a one-workload slice of
the paper's Figs. 12 and 14.

Run:  python examples/quickstart.py [workload] [scale]
"""

import sys

from repro import Runner, Scheme
from repro.core.schemes import describe


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "fdtd2d"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

    runner = Runner(scale=scale)
    print(f"Calibrating '{workload}' (scale {scale}) ...")
    baseline = runner.baseline(workload)
    print(f"  unprotected: {baseline.cycles:,.0f} cycles, "
          f"DRAM utilisation {baseline.dram_utilization:.0%}\n")

    schemes = [Scheme.NAIVE, Scheme.COMMON_CTR, Scheme.PSSM,
               Scheme.SHM_READONLY, Scheme.SHM, Scheme.SHM_UPPER_BOUND]
    header = f"{'scheme':16s} {'norm. IPC':>10s} {'overhead':>9s} {'metadata BW':>12s}"
    print(header)
    print("-" * len(header))
    for scheme in schemes:
        result = runner.run(workload, scheme)
        nipc = result.normalized_ipc(baseline)
        print(f"{scheme.value:16s} {nipc:10.3f} {1 - nipc:9.1%} "
              f"{result.bandwidth_overhead:12.1%}")
    print()
    for scheme in schemes:
        print(f"{scheme.value:16s} {describe(scheme)}")

    shm = runner.run(workload, Scheme.SHM)
    print(f"\nSHM detector statistics on '{workload}':")
    print(f"  read-only prediction accuracy : {shm.readonly_stats.accuracy:.1%}")
    print(f"  streaming prediction accuracy : {shm.streaming_stats.accuracy:.1%}")
    print(f"  shared-counter reads (no BMT) : {shm.shared_counter_reads:,}")
    print(f"  stream verdicts delivered     : {shm.stream_verdicts:,}")


if __name__ == "__main__":
    main()
