#!/usr/bin/env python
"""Secure ML inference: read-only weights are the paper's sweet spot.

Models an inference server: a large weight matrix is copied to the GPU
once (read-only), activations stream through per request.  This is
exactly the workload class where the read-only shared counter and
dual-granularity MACs shine — the weights need confidentiality and
integrity but no freshness machinery.

The script builds the workload with the public WorkloadBuilder API,
compares PSSM against SHM, and then demonstrates the multi-batch reuse
pattern with the InputReadOnlyReset API.
"""

from repro import Runner, Scheme
from repro.workloads import patterns as pat
from repro.workloads.base import WorkloadBuilder

KB, MB = 1024, 1024 * 1024


def build_inference(reload_inputs_with_reset_api: bool, scale: float = 1.0):
    """Three inference batches over fixed weights.

    Each batch re-copies the input buffer from the host.  With the
    reset API the inputs stay in the read-only fast path; without it
    the first re-copy permanently demotes them.
    """
    suffix = "reset" if reload_inputs_with_reset_api else "plain"
    b = WorkloadBuilder(f"ml-inference-{suffix}", bandwidth_utilization=0.7,
                        seed=3, description="batched ML inference")
    weights = b.alloc("weights", int(3 * MB * scale))
    inputs = b.alloc("inputs", int(0.75 * MB * scale))
    activations = b.alloc("activations", 192 * KB, host_init=False)

    for batch in range(3):
        trace = pat.interleave(b.rng, [
            pat.stream_read(weights.address, weights.size),
            pat.stream_read(inputs.address, inputs.size),
            pat.stream_write(activations.address, 96 * KB),
        ])
        if batch == 0:
            b.kernel(f"batch{batch}", trace)
        elif reload_inputs_with_reset_api:
            b.kernel(f"batch{batch}", trace, readonly_resets=[inputs])
        else:
            b.kernel(f"batch{batch}", trace, copies=[inputs])
    return b.build()


def report(runner: Runner, name: str) -> None:
    baseline = runner.baseline(name)
    print(f"\n{name} (baseline util {baseline.dram_utilization:.0%}):")
    print(f"  {'scheme':14s} {'norm. IPC':>9s} {'ctr+BMT bytes':>14s} "
          f"{'shared-ctr reads':>17s}")
    for scheme in (Scheme.PSSM, Scheme.SHM_READONLY, Scheme.SHM):
        r = runner.run(name, scheme)
        freshness_bytes = r.traffic.counter_bytes + r.traffic.bmt_bytes
        print(f"  {scheme.value:14s} {r.normalized_ipc(baseline):9.3f} "
              f"{freshness_bytes:14,} {r.shared_counter_reads:17,}")


def main() -> None:
    runner = Runner()
    plain = build_inference(reload_inputs_with_reset_api=False, scale=0.5)
    with_api = build_inference(reload_inputs_with_reset_api=True, scale=0.5)
    runner.add_workload(plain)
    runner.add_workload(with_api)

    report(runner, plain.name)
    report(runner, with_api.name)

    r_plain = runner.run(plain.name, Scheme.SHM)
    r_api = runner.run(with_api.name, Scheme.SHM)
    saved = (r_plain.traffic.counter_bytes + r_plain.traffic.bmt_bytes) - \
            (r_api.traffic.counter_bytes + r_api.traffic.bmt_bytes)
    print(f"\nInputReadOnlyReset keeps reloaded inputs on the shared-counter "
          f"path:\n  freshness-metadata bytes saved across batches: {saved:,}")
    print(f"  read-only prediction accuracy: plain={r_plain.readonly_stats.accuracy:.1%} "
          f"with-API={r_api.readonly_stats.accuracy:.1%}")


if __name__ == "__main__":
    main()
