#!/usr/bin/env python
"""End-to-end secure computation: a matrix multiply over encrypted memory.

Runs C = A x B the way a secure GPU would see it: A and B are copied to
protected device memory as read-only inputs (shared-counter fast path),
every operand read is a verified decryption, every partial result write
goes through counter-mode encryption + stateful MAC + BMT update, and
the result is copied back and checked against numpy.

Then the attacker strikes mid-computation — flipping one bit of B's
ciphertext — and the very next verified read catches it.
"""

import struct

import numpy as np

from repro.common.types import IntegrityError
from repro.core.api import SecureGPUContext

N = 24  # matrix dimension (N x N float64)
BYTES = N * N * 8


def to_bytes(m: np.ndarray) -> bytes:
    return m.astype("<f8").tobytes()


def read_row(ctx, buf, row: int) -> np.ndarray:
    raw = ctx.read(buf.address + row * N * 8, N * 8)
    return np.frombuffer(raw, dtype="<f8")


def main() -> None:
    rng = np.random.default_rng(7)
    A = rng.standard_normal((N, N))
    B = rng.standard_normal((N, N))

    ctx = SecureGPUContext(memory_bytes=8 * 1024 * 1024)
    buf_a = ctx.alloc("A", BYTES)
    buf_b = ctx.alloc("B", BYTES)
    buf_c = ctx.alloc("C", BYTES)
    ctx.memcpy_h2d(buf_a, to_bytes(A), read_only=True)
    ctx.memcpy_h2d(buf_b, to_bytes(B.T.copy()), read_only=True)  # column access
    ctx.memcpy_h2d(buf_c, bytes(BYTES), read_only=False)

    print(f"Computing C = A x B over encrypted memory ({N}x{N}) ...")
    for i in range(N):
        a_row = read_row(ctx, buf_a, i)
        out = np.empty(N)
        for j in range(N):
            b_col = read_row(ctx, buf_b, j)  # row of B^T = column of B
            out[j] = float(a_row @ b_col)
        ctx.write(buf_c.address + i * N * 8, out.astype("<f8").tobytes())

    C = np.frombuffer(ctx.memcpy_d2h(buf_c, BYTES)[:BYTES], dtype="<f8")
    C = C.reshape(N, N)
    error = np.max(np.abs(C - A @ B))
    print(f"  max |C - A@B| = {error:.2e}")
    assert error < 1e-9, "secure computation corrupted the result!"
    print(f"  {ctx.device.verified_reads:,} verified reads, "
          f"0 integrity failures")

    print("\nAttacker flips one bit of B's ciphertext mid-computation ...")
    ct, mac = ctx.device.raw_block(buf_b.address)
    ctx.device.raw_overwrite(buf_b.address,
                             bytes([ct[0] ^ 0x01]) + ct[1:], mac=mac)
    try:
        read_row(ctx, buf_b, 0)
    except IntegrityError as exc:
        print(f"  DETECTED before the corrupted value reached the kernel: "
              f"{type(exc).__name__}")
    else:
        raise SystemExit("tampering went undetected!")


if __name__ == "__main__":
    main()
