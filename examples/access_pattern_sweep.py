#!/usr/bin/env python
"""Dual-granularity MAC adaptivity across the stream/random spectrum.

Sweeps a synthetic workload from pure streaming to pure random access
and records, for each mix, the MAC + misprediction bandwidth of PSSM
(block MACs only) versus SHM (dual-granularity).  The crossover
behaviour is the core of Section IV-C: coarse MACs win exactly where
the streaming detector says they apply, and the detector keeps the
penalty bounded where they don't.
"""

from repro import Runner, Scheme
from repro.workloads import patterns as pat
from repro.workloads.base import WorkloadBuilder

KB, MB = 1024, 1024 * 1024


def build_mix(random_fraction: float, scale: float = 0.5):
    b = WorkloadBuilder(f"mix-{int(100 * random_fraction):03d}",
                        bandwidth_utilization=0.6, seed=17)
    data = b.alloc("data", int(3 * MB * scale))
    out = b.alloc("out", 192 * KB, host_init=False)

    stream_lines = data.size // 128
    n_random = int(stream_lines * random_fraction)
    n_stream_bytes = max(128, int(data.size * (1.0 - random_fraction)) // 128 * 128)
    sources = []
    if random_fraction < 1.0:
        sources.append(pat.stream_read(data.address, n_stream_bytes))
    if n_random:
        sources.append(pat.random_read(b.rng, data.address, data.size, n_random))
    sources.append(pat.stream_write(out.address, 48 * KB))
    b.kernel("k0", pat.interleave(b.rng, sources))
    return b.build()


def main() -> None:
    runner = Runner()
    print(f"{'random %':>9s} {'PSSM mac BW':>12s} {'SHM mac BW':>11s} "
          f"{'SHM mispred':>12s} {'stream acc.':>12s}")
    for fraction in (0.0, 0.1, 0.25, 0.5, 0.75, 1.0):
        w = build_mix(fraction)
        runner.add_workload(w)
        pssm = runner.run(w.name, Scheme.PSSM)
        shm = runner.run(w.name, Scheme.SHM)
        data = shm.traffic.data_bytes or 1
        print(f"{fraction:9.0%} "
              f"{pssm.traffic.mac_bytes / pssm.traffic.data_bytes:12.2%} "
              f"{shm.traffic.mac_bytes / data:11.2%} "
              f"{shm.traffic.misprediction_bytes / data:12.2%} "
              f"{shm.streaming_stats.accuracy:12.1%}")

    print("\nReading: at 0% random the coarse chunk MAC nearly eliminates "
          "MAC traffic;\nas the mix turns random the detector flips chunks "
          "to block MACs and SHM's\nMAC traffic converges to PSSM's, with "
          "the misprediction column showing the\nbounded adaptation cost.")


if __name__ == "__main__":
    main()
